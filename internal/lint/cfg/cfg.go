// Package cfg builds intraprocedural control-flow graphs from typed
// ASTs — the substrate flow-sensitive edgelint analyzers (batchlife)
// run their dataflow on. It is an analyzer itself: checks that need a
// CFG list cfg.Analyzer in Requires and read the package's Graphs out
// of Pass.ResultOf, so every analyzer in a pass shares one build.
//
// The graph is statement-level: each basic block holds the statements
// (and lowered branch-condition expressions) that execute together, in
// order; edges follow Go's control statements — if/for/range/switch/
// select, labeled break/continue, goto, fallthrough — with conditions
// lowered through short-circuit && / || / ! so each leaf condition sits
// in the block that actually evaluates it. Two-way branch blocks order
// successors [true, false]. Return statements edge to the graph's Exit
// block; panic(...) and the syntactically recognizable never-return
// calls (os.Exit, log.Fatal*, runtime.Goexit) edge to Panic, so a
// lifetime analysis can demand obligations on normal exits without
// flagging crash paths.
//
// Known approximations (DESIGN.md §13): defer bodies are not spliced
// into exit edges — DeferStmt appears as an ordinary node in the block
// that registers it, and clients model LIFO execution themselves;
// never-return detection is name-based, so an aliased os.Exit falls
// through to Exit; FuncLit bodies get their own graphs and are opaque
// expressions in the enclosing function's graph.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// Analyzer builds a Graph for every function declaration and literal in
// the package. Its result is a *Graphs.
var Analyzer = &analysis.Analyzer{
	Name: "cfg",
	Doc: `build control-flow graphs for every function in the package

Infrastructure pass: it reports nothing itself. Analyzers that list it
in Requires receive a *cfg.Graphs via Pass.ResultOf and look up each
function's graph with FuncOf.`,
	Run: run,
}

// Graphs holds one control-flow graph per function in a package.
type Graphs struct {
	funcs map[ast.Node]*Graph
}

// FuncOf returns the graph for fn (an *ast.FuncDecl or *ast.FuncLit),
// or nil for bodyless declarations.
func (g *Graphs) FuncOf(fn ast.Node) *Graph { return g.funcs[fn] }

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit this graph was built from.
	Fn ast.Node
	// Blocks lists every block, Entry first. Unreachable statements
	// still get blocks (with no predecessors), so positions stay
	// addressable.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the normal-return sink: every return statement's block and
	// the fall-off-the-end path edge here.
	Exit *Block
	// Panic is the abnormal sink: panic calls and recognized
	// never-return calls edge here instead of Exit.
	Panic *Block
}

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes holds the block's statements — and, for branch blocks, the
	// lowered leaf condition expression last — in execution order.
	Nodes []ast.Node
	// Succs are the successor blocks. A block ending in a two-way branch
	// orders them [true, false]; a switch/select header has one edge per
	// clause (plus fall-past when no default).
	Succs []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.Index) }

func run(pass *analysis.Pass) (any, error) {
	gs := &Graphs{funcs: map[ast.Node]*Graph{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					gs.funcs[fn] = build(fn, fn.Body)
				}
			case *ast.FuncLit:
				gs.funcs[fn] = build(fn, fn.Body)
			}
			return true
		})
	}
	return gs, nil
}

// builder carries the under-construction graph and the control context
// (break/continue targets, label bindings) of the statement being
// lowered.
type builder struct {
	g       *Graph
	current *Block // nil after a terminator (return, panic, break, ...)

	// breaks and continues are innermost-first stacks of enclosing
	// targets; label is "" for unlabeled statements.
	breaks    []ctltarget
	continues []ctltarget

	// labels maps label names to their goto/branch target blocks,
	// created on first reference so forward gotos resolve.
	labels map[string]*Block

	// pendingLabel is the label naming the next loop/switch/select
	// statement, consumed by that statement to serve labeled
	// break/continue.
	pendingLabel string
}

type ctltarget struct {
	label string
	block *Block
}

func build(fn ast.Node, body *ast.BlockStmt) *Graph {
	g := &Graph{Fn: fn}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.Panic = b.newBlock()
	b.current = g.Entry
	b.stmtList(body.List)
	if b.current != nil {
		b.edge(b.current, g.Exit) // fall off the end
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) { from.Succs = append(from.Succs, to) }

// use returns the block to keep appending to, starting a fresh
// (unreachable) one if a terminator just ended the previous block.
func (b *builder) use() *Block {
	if b.current == nil {
		b.current = b.newBlock()
	}
	return b.current
}

func (b *builder) add(n ast.Node) { b.use().Nodes = append(b.use().Nodes, n) }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// branchTarget finds the innermost target on stack matching label.
func branchTarget(stack []ctltarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:

	case *ast.LabeledStmt:
		// The label is simultaneously a goto target and — when it names
		// a for/switch/select — the key labeled break/continue resolve
		// through; the labeled statement consumes pendingLabel for that.
		target, ok := b.labels[s.Label.Name]
		if !ok {
			target = b.newBlock()
			b.labels[s.Label.Name] = target
		}
		if b.current != nil {
			b.edge(b.current, target)
		}
		b.current = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.current, b.g.Exit)
		b.current = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := branchTarget(b.breaks, label); t != nil {
				b.add(s)
				b.edge(b.current, t)
				b.current = nil
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := branchTarget(b.continues, label); t != nil {
				b.add(s)
				b.edge(b.current, t)
				b.current = nil
			}
		case token.GOTO:
			target, ok := b.labels[s.Label.Name]
			if !ok {
				target = b.newBlock()
				b.labels[s.Label.Name] = target
			}
			b.add(s)
			b.edge(b.current, target)
			b.current = nil
		case token.FALLTHROUGH:
			// Handled structurally by the switch lowering (the clause's
			// end block edges to the next clause); nothing to record.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		after := b.newBlock()
		els := after
		if s.Else != nil {
			els = b.newBlock()
		}
		b.cond(s.Cond, then, els)
		b.current = then
		b.stmt(s.Body)
		if b.current != nil {
			b.edge(b.current, after)
		}
		if s.Else != nil {
			b.current = els
			b.stmt(s.Else)
			if b.current != nil {
				b.edge(b.current, after)
			}
		}
		b.current = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := header
		if s.Post != nil {
			post = b.newBlock()
		}
		if b.current != nil {
			b.edge(b.current, header)
		}
		b.current = header
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.edge(b.use(), body)
			b.current = nil
		}
		label := b.pendingLabel
		b.pendingLabel = ""
		b.breaks = append(b.breaks, ctltarget{label, after})
		b.continues = append(b.continues, ctltarget{label, post})
		b.current = body
		b.stmt(s.Body)
		if b.current != nil {
			b.edge(b.current, post)
		}
		if s.Post != nil {
			b.current = post
			b.stmt(s.Post)
			if b.current != nil {
				b.edge(b.current, header)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.current = after

	case *ast.RangeStmt:
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		if b.current != nil {
			b.edge(b.current, header)
		}
		// The header holds the whole RangeStmt node: it evaluates X and,
		// per iteration, assigns Key/Value — clients treat those as uses
		// occurring at the header.
		header.Nodes = append(header.Nodes, s)
		b.edge(header, body)  // another iteration
		b.edge(header, after) // range exhausted
		label := b.pendingLabel
		b.pendingLabel = ""
		b.breaks = append(b.breaks, ctltarget{label, after})
		b.continues = append(b.continues, ctltarget{label, header})
		b.current = body
		b.stmt(s.Body)
		if b.current != nil {
			b.edge(b.current, header)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.current = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		after := b.newBlock()
		header := b.use()
		label := b.pendingLabel
		b.pendingLabel = ""
		b.breaks = append(b.breaks, ctltarget{label, after})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(header, blk)
			b.current = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.current != nil {
				b.edge(b.current, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select with no clauses blocks forever; otherwise control
		// always leaves through a clause, so the header itself never
		// falls through to after.
		b.current = after

	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && neverReturns(call) {
			b.edge(b.current, b.g.Panic)
			b.current = nil
		}

	default:
		// Anything unrecognized is recorded as a plain node so its
		// positions stay addressable.
		b.add(s)
	}
}

// switchStmt lowers expression and type switches: the header (tag/init)
// edges to every clause block; a clause without fallthrough edges to
// after; fallthrough edges to the next clause's block; a switch without
// a default also edges header → after (no clause may match).
func (b *builder) switchStmt(s ast.Stmt) {
	var init ast.Stmt
	var body *ast.BlockStmt
	var tag ast.Node
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, body, tag = s.Init, s.Body, s.Tag
	case *ast.TypeSwitchStmt:
		init, body, tag = s.Init, s.Body, s.Assign
	}
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	after := b.newBlock()
	header := b.use()
	label := b.pendingLabel
	b.pendingLabel = ""
	b.breaks = append(b.breaks, ctltarget{label, after})

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(header, blocks[i])
		if c.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(header, after)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.current = blocks[i]
		for _, e := range cc.List {
			b.add(e) // case expressions are evaluated in the clause block
		}
		b.stmtList(cc.Body)
		if b.current != nil {
			if fallsThrough(cc.Body) && i+1 < len(blocks) {
				b.edge(b.current, blocks[i+1])
			} else {
				b.edge(b.current, after)
			}
			b.current = nil
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.current = after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// cond lowers a branch condition into the graph: short-circuit && / ||
// become intermediate blocks, ! swaps the targets, and each leaf
// condition expression is appended to the block that evaluates it,
// whose successors become exactly [t, f].
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND: // X && Y: Y evaluates only when X is true
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.current = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR: // X || Y: Y evaluates only when X is false
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.current = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	blk := b.use()
	blk.Nodes = append(blk.Nodes, e)
	blk.Succs = append(blk.Succs, t, f)
	b.current = nil
}

// neverReturns recognizes calls that terminate the goroutine or
// process, syntactically: panic, os.Exit, runtime.Goexit, log.Fatal*.
// Name-based by design — an aliased os.Exit simply falls through to the
// normal Exit block, a safe over-approximation for lifetime checks
// (the path demands its obligations rather than being excused).
func neverReturns(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
