package tracekey_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/tracekey"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, tracekey.Analyzer, "tkfix")
}
