// Fixture for the tracekey analyzer.
package tkfix

import "repro/internal/trace"

const noStage = ""

func emits(b *trace.Buf) {
	b.Emit(trace.Event{Track: "run", Phase: trace.PhaseRun, Win: -1, Kind: trace.KMark, Stage: "feed"})
	b.Emit(trace.Event{Track: "run", Kind: trace.KMark})            // want "trace event without a stage key"
	b.Emit(trace.Event{Track: "run", Kind: trace.KMark, Stage: ""}) // want "trace event with an empty stage key"
	b.Emit(trace.Event{Kind: trace.KMark, Stage: noStage})          // want "trace event with an empty stage key"
	b.Begin("run", trace.PhaseRun, -1, 0, "")                       // want "trace Begin with an empty stage key"
	b.Loss("run", trace.PhaseRun, -1, 0, "", trace.LossDropped, 1)  // want "trace Loss with an empty stage key"
	b.Loss("run", trace.PhaseRun, -1, 0, "sink", trace.LossDropped, 1)
	sp := b.Begin("run", trace.PhaseRun, -1, 0, "seal")
	sp.End(0)
}

// A stage that arrives through a variable is the caller's contract,
// not this analyzer's: only compile-time empties are flagged.
func dynamic(b *trace.Buf, stage string) {
	b.Begin("run", trace.PhaseRun, -1, 0, stage).End(0)
	e := trace.Event{Track: "run", Kind: trace.KMark} // built away from Emit: not checked
	b.Emit(e)
}

func loops(b *trace.Buf, wins []int) {
	for i := range wins {
		sp := b.Begin("g", trace.PhaseGen, int32(i), uint64(i), "gen")
		defer sp.End(0) // want "Span.End deferred inside a loop"
	}
	for i := range wins {
		sp := b.Begin("g", trace.PhaseGen, int32(i), uint64(i), "gen")
		defer func() { sp.End(0) }() // want "Span.End deferred inside a loop"
	}
	for i := range wins {
		if i%2 == 0 {
			sp := b.Begin("g", trace.PhaseGen, int32(i), uint64(i), "gen")
			defer sp.End(0) // want "Span.End deferred inside a loop"
		}
	}
}

func loopsOK(bufs []*trace.Buf, wins []int) {
	for i := range wins {
		sp := bufs[0].Begin("g", trace.PhaseGen, int32(i), uint64(i), "gen")
		sp.End(0) // ends inside the iteration
	}
	for i := range bufs {
		go func(tb *trace.Buf, win int) {
			sp := tb.Begin("g", trace.PhaseGen, int32(win), uint64(win), "gen")
			defer sp.End(0) // scoped to this literal, ends per goroutine
		}(bufs[i], i)
	}
	for range wins {
		defer release() // deferring non-span cleanup in a loop is closecheck's concern, not ours
	}
}

func endsOutside(b *trace.Buf) {
	sp := b.Begin("run", trace.PhaseRun, -1, 0, "run")
	defer sp.End(0) // function-scoped span: the idiomatic use
	for range make([]int, 3) {
	}
}

func release() {}
