// Package tracekey defines an analyzer for the trace contract
// (DESIGN.md §11): every deterministic trace event must carry a stage
// key, and a Span must end inside the loop iteration that began it.
//
// The stage key is the join column of the whole observability layer —
// `edgetrace stages` aggregates by it, exemplars link histograms to it,
// and the stall report correlates timing samples against it. An event
// emitted with an empty stage silently falls out of every attribution
// table while still counting toward ring capacity, so the mistake
// survives all byte-identity goldens and only surfaces as a mysteriously
// incomplete report.
//
// Flagged, repo-wide (_test.go files exempt):
//
//   - (*trace.Buf).Begin or (*trace.Buf).Loss called with a
//     constant-empty stage argument;
//   - (*trace.Buf).Emit given an Event composite literal whose Stage
//     field is omitted or constant-empty;
//   - a `defer` that ends a trace.Span — directly or through a deferred
//     func literal — lexically inside a for/range body. Deferred ends
//     pile up to function exit, so every iteration's span closes late
//     and critical-path weights smear across windows. A defer inside a
//     func literal launched per iteration is fine: it runs when that
//     literal returns.
package tracekey

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags stage-less trace events and loop-deferred span ends.
var Analyzer = &analysis.Analyzer{
	Name: "tracekey",
	Doc:  "require stage keys on trace events; forbid Span.End deferred inside loops",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkStage(pass, call)
			}
			return true
		})
		ast.Walk(deferWalker{pass: pass}, f)
	}
	return nil, nil
}

// bufMethod resolves call to a method of the given name on trace.Buf,
// or nil.
func bufMethod(pass *analysis.Pass, call *ast.CallExpr, names ...string) *types.Func {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !lintutil.NamedTypeIn(recv.Type(), "trace", "Buf") {
		return nil
	}
	for _, name := range names {
		if fn.Name() == name {
			return fn
		}
	}
	return nil
}

// checkStage enforces the non-empty stage key on Begin, Loss, and Emit.
func checkStage(pass *analysis.Pass, call *ast.CallExpr) {
	if fn := bufMethod(pass, call, "Begin", "Loss"); fn != nil {
		// Both signatures place stage at argument index 4.
		if len(call.Args) > 4 && isEmptyString(pass.TypesInfo, call.Args[4]) {
			pass.Reportf(call.Pos(),
				"trace %s with an empty stage key; edgetrace attributes by stage — name the pipeline step",
				fn.Name())
		}
		return
	}
	if fn := bufMethod(pass, call, "Emit"); fn != nil && len(call.Args) == 1 {
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok || !lintutil.NamedTypeIn(pass.TypesInfo.TypeOf(lit), "trace", "Event") {
			return
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return // positional literal: every field is present
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Stage" {
				if isEmptyString(pass.TypesInfo, kv.Value) {
					pass.Reportf(kv.Value.Pos(),
						"trace event with an empty stage key; edgetrace attributes by stage — name the pipeline step")
				}
				return
			}
		}
		pass.Reportf(call.Pos(),
			"trace event without a stage key; edgetrace attributes by stage — set Event.Stage")
	}
}

// isEmptyString reports whether e is a compile-time constant "".
func isEmptyString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return constant.StringVal(tv.Value) == ""
}

// deferWalker tracks whether the walk is inside a for/range body with
// no intervening func literal; a defer found there must not end a
// span. The visitor is a value, so loop/literal scoping falls out of
// ast.Walk's recursion.
type deferWalker struct {
	pass   *analysis.Pass
	inLoop bool
}

func (w deferWalker) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return deferWalker{pass: w.pass, inLoop: true}
	case *ast.FuncLit:
		// A literal's defers run when the literal returns, not at the
		// enclosing function's exit: per-iteration goroutines are fine.
		return deferWalker{pass: w.pass}
	case *ast.DeferStmt:
		if w.inLoop {
			w.checkDefer(n)
		}
	}
	return w
}

func (w deferWalker) checkDefer(d *ast.DeferStmt) {
	ends := isSpanEnd(w.pass.TypesInfo, d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && !ends {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if ends {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isSpanEnd(w.pass.TypesInfo, call) {
				ends = true
			}
			return true
		})
	}
	if ends {
		w.pass.Reportf(d.Pos(),
			"Span.End deferred inside a loop runs at function exit, closing every iteration's span late; end the span in the loop body")
	}
}

// isSpanEnd reports whether call invokes (trace.Span).End.
func isSpanEnd(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Name() != "End" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && lintutil.NamedTypeIn(recv.Type(), "trace", "Span")
}
