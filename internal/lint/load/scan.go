package load

import (
	"go/build"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PkgMeta describes one module package without type-checking it: just
// enough (files, module-internal imports) for a driver to key a result
// cache and order packages by dependency before deciding which ones
// actually need loading.
type PkgMeta struct {
	// Path is the package's import path.
	Path string
	// Dir holds its sources.
	Dir string
	// GoFiles are the absolute paths of the constraint-selected,
	// non-test sources, sorted.
	GoFiles []string
	// Imports are the module-internal import paths (external and
	// standard-library imports cannot carry edgelint facts, so drivers
	// don't need them).
	Imports []string
}

// Scan enumerates the module's packages the same way LoadAll does —
// same walk, same skip rules, same build-constraint file selection —
// but stops at the import graph instead of type-checking. Results are
// sorted by import path.
func Scan(moduleDir string) ([]*PkgMeta, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	var out []*PkgMeta
	err = filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if path != moduleDir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(moduleDir, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		m := &PkgMeta{Path: ip, Dir: path}
		files := append([]string(nil), bp.GoFiles...)
		sort.Strings(files)
		for _, f := range files {
			m.GoFiles = append(m.GoFiles, filepath.Join(path, f))
		}
		for _, imp := range bp.Imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				m.Imports = append(m.Imports, imp)
			}
		}
		out = append(out, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
