// Package load type-checks the packages of a Go module using nothing
// but the standard library, producing the inputs an analysis Pass
// needs (files, types, type info).
//
// The repo builds hermetically offline, so the loader cannot shell out
// to a module proxy or depend on golang.org/x/tools/go/packages.
// Instead it resolves imports itself: paths inside the module are
// type-checked from source recursively, and standard-library paths go
// through go/importer's source importer (which reads GOROOT sources —
// always present, since the toolchain ships them). go/build selects
// files per build constraints, so platform-gated packages like
// internal/tcpinfo load the same file set the compiler would.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding its sources.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed (non-test, constraint-selected) sources,
	// sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds resolution results for Files.
	Info *types.Info
	// Errors are type-checking problems. Analyzers need sound types, so
	// drivers should refuse to report findings for packages with errors.
	Errors []error
}

// Loader loads packages of a single module, caching by import path.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModuleDir is the directory containing go.mod.
	ModuleDir string
	// ModulePath is the module's declared path.
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package
	// order records packages in completion order: a package's
	// dependencies finish type-checking before it does, so this is a
	// ready-made topological order.
	order []*Package
	// srcRoots are extra GOPATH-style source roots (analysistest
	// fixture trees): an import path that matches no module package
	// resolves against <root>/<path> before falling back to the
	// standard library.
	srcRoots []string
	// loading guards against import cycles (which would otherwise
	// recurse forever); a cycle is reported as an error.
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader returns a loader for the module rooted at moduleDir.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// AddSrcDir registers a GOPATH-style source root: imports that match
// no module package resolve as <dir>/<importpath> when that directory
// holds Go files. analysistest uses this so fixtures can import helper
// fixture packages living beside them under testdata/src.
func (l *Loader) AddSrcDir(dir string) { l.srcRoots = append(l.srcRoots, dir) }

// Packages returns every package loaded so far, dependencies before
// dependents.
func (l *Loader) Packages() []*Package { return append([]*Package(nil), l.order...) }

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// LoadAll discovers and type-checks every package in the module,
// skipping testdata, vendor, and hidden directories. Results are
// sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var out []*Package
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is its own world; don't mix its packages in.
		if path != l.ModuleDir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			return nil // no buildable Go files here
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(ip)
		if err != nil {
			return fmt.Errorf("loading %s: %w", ip, err)
		}
		out = append(out, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	return l.LoadDir(dir, importPath)
}

// LoadDir type-checks the sources in dir under the given import path.
// dir need not live inside the module tree (analysistest fixtures use
// this), but its imports of module packages resolve against the
// loader's module.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	sorted := append([]string(nil), bp.GoFiles...)
	sort.Strings(sorted)
	for _, name := range sorted {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	pkg.Files = files
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[importPath] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// importPkg resolves one import: module-internal paths recurse through
// the loader; everything else is treated as standard library.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("cgo is not supported")
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if len(p.Errors) > 0 {
			return nil, fmt.Errorf("package %s has type errors: %v", path, p.Errors[0])
		}
		return p.Types, nil
	}
	for _, root := range l.srcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if bp, err := build.ImportDir(dir, 0); err == nil && len(bp.GoFiles) > 0 {
			p, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			if len(p.Errors) > 0 {
				return nil, fmt.Errorf("package %s has type errors: %v", path, p.Errors[0])
			}
			return p.Types, nil
		}
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
