// Package unitsafety defines an analyzer guarding the unit discipline
// of the measurement pipeline: quantities typed in repro/internal/units
// (Rate in bits/second, ByteSize in bytes) and time.Duration must not
// silently mix with each other or with bare numerics. The HDratio
// goodput corrections (§3.2) are exactly the arithmetic where a
// bytes-vs-bits or Mbps-vs-bps slip survives the compiler.
//
// Flagged, repo-wide (internal/units itself and _test.go files are
// exempt):
//
//  1. Direct conversions between dimensioned types — units.Rate(b)
//     where b is a ByteSize, time.Duration(r) where r is a Rate, and
//     every other cross-dimension cast. Converting a quantity between
//     dimensions requires real math (RateOf, BytesIn, TimeFor), not a
//     cast.
//
//  2. Multiplying two values of the same units type: Rate*Rate is
//     bits²/s², not a Rate, whatever the type system says.
//
//  3. Additive or ordering operations mixing a units quantity with a
//     bare numeric constant (r > 2500000). Thresholds must spell their
//     unit: r > 2.5*units.Mbps. Zero is exempt (sign checks are
//     dimensionless).
package unitsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags unit-mixing hazards.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc:  "forbid cross-dimension casts, squared units, and bare numeric constants mixed with units quantities",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.PathHasSuffix(pass.Pkg.Path(), "internal/units") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// dimOf returns the dimension of a named quantity type, or "".
func dimOf(t types.Type) string {
	switch {
	case lintutil.NamedTypeIn(t, "internal/units", "Rate"):
		return "bits/s (units.Rate)"
	case lintutil.NamedTypeIn(t, "internal/units", "ByteSize"):
		return "bytes (units.ByteSize)"
	case lintutil.NamedTypeIn(t, "time", "Duration"):
		return "nanoseconds (time.Duration)"
	}
	return ""
}

// checkConversion flags casts between two different dimensions.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := dimOf(tv.Type)
	if dst == "" {
		return
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || argTV.Value != nil { // constants carry no dimension
		return
	}
	src := dimOf(argTV.Type)
	if src == "" || src == dst {
		return
	}
	pass.Reportf(call.Pos(),
		"direct conversion from %s to %s; a cast does not convert units — go through the arithmetic helpers (units.RateOf, Rate.BytesIn, Rate.TimeFor)", src, dst)
}

// checkBinary flags same-unit multiplication and bare-constant mixing.
func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	xt, xok := pass.TypesInfo.Types[be.X]
	yt, yok := pass.TypesInfo.Types[be.Y]
	if !xok || !yok {
		return
	}
	xd, yd := dimOf(xt.Type), dimOf(yt.Type)

	// Constants are scalars (2 * r scales; it does not square): only
	// two non-constant operands of the same unit multiply wrongly.
	if be.Op == token.MUL && xt.Value == nil && yt.Value == nil &&
		xd != "" && xd == yd && !isDuration(xt.Type) {
		pass.Reportf(be.Pos(),
			"multiplying two %s quantities; the product is not a quantity of the same unit — convert one side to a dimensionless float64 first", xd)
		return
	}

	switch be.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	// Exactly one side is a units quantity (Duration is excluded:
	// the stdlib's own constants cover it) and the other is a bare
	// nonzero constant with no unit spelled.
	check := func(q types.Type, c types.TypeAndValue, cexpr ast.Expr) {
		d := dimOf(q)
		if d == "" || isDuration(q) || c.Value == nil {
			return
		}
		if isZero(c) || mentionsUnits(pass, cexpr) {
			return
		}
		pass.Reportf(be.Pos(),
			"bare numeric constant mixed with a %s quantity; spell the unit (e.g. 2.5*units.Mbps, 10*units.KB)", d)
	}
	check(xt.Type, yt, be.Y)
	check(yt.Type, xt, be.X)
}

func isDuration(t types.Type) bool { return lintutil.NamedTypeIn(t, "time", "Duration") }

func isZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// mentionsUnits reports whether the constant expression references any
// object from the units package (units.Mbps, units.KB, ...), i.e. the
// author spelled a unit.
func mentionsUnits(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil && obj.Pkg() != nil &&
			lintutil.PathHasSuffix(obj.Pkg().Path(), "internal/units") {
			found = true
		}
		return !found
	})
	return found
}
