package unitsafety_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/unitsafety"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, unitsafety.Analyzer, "usfix")
}
