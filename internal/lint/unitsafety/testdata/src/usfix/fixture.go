// Fixture for the unitsafety analyzer, exercising the real
// repro/internal/units types.
package usfix

import (
	"time"

	"repro/internal/units"
)

func castBytesToRate(b units.ByteSize) units.Rate {
	return units.Rate(b) // want "direct conversion from bytes \\(units.ByteSize\\) to bits/s \\(units.Rate\\)"
}

func castRateToDuration(r units.Rate) time.Duration {
	return time.Duration(r) // want "direct conversion from bits/s \\(units.Rate\\) to nanoseconds \\(time.Duration\\)"
}

func castDurationToBytes(d time.Duration) units.ByteSize {
	return units.ByteSize(d) // want "direct conversion from nanoseconds \\(time.Duration\\) to bytes \\(units.ByteSize\\)"
}

func square(r units.Rate) units.Rate {
	return r * r // want "multiplying two bits/s \\(units.Rate\\) quantities"
}

func bareThreshold(r units.Rate) bool {
	return r > 2500000 // want "bare numeric constant mixed with a bits/s \\(units.Rate\\) quantity"
}

func bareOffset(b units.ByteSize) units.ByteSize {
	return b + 1500 // want "bare numeric constant mixed with a bytes \\(units.ByteSize\\) quantity"
}

// --- unit-correct arithmetic that must NOT be flagged ---

func ok(r units.Rate, b units.ByteSize, d time.Duration) bool {
	if r > 2.5*units.Mbps {
		return true
	}
	if b >= 10*units.KB {
		return true
	}
	scaled := 2 * r // scaling by a scalar keeps the unit
	_ = scaled
	_ = units.RateOf(int64(b), d)  // the arithmetic helper path
	_ = r.BytesIn(d)               // rate × time → bytes, via helper
	_ = float64(r) / float64(Mbps) // dimensionless after explicit floats
	return r <= 0                  // comparisons with zero are sign checks
}

// Mbps aliases the unit constant so the float64 line above has a local
// name to reference.
const Mbps = units.Mbps
