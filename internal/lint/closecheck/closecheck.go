// Package closecheck defines an analyzer for the bug class PR 1 fixed
// by hand in cmd/edgesim: a Flush, Close, Seal, or Commit whose error
// is silently discarded. A full disk or failed sink surfaces exactly
// once, at flush/close/commit time; dropping that error truncates
// datasets without anyone noticing. For segstore.Writer.Commit the
// stakes are higher still: a dropped Commit error means segments the
// caller believes durable are absent from the manifest, so a resumed
// run silently regenerates (or worse, skips) them.
//
// Flagged, repo-wide (_test.go files exempt): calls to methods named
// Flush, Close, Seal, or Commit whose last result is an error, when
// the call appears as a bare expression statement, a `go` statement,
// or a `defer`. Assigning the error — even to _ — is accepted: an
// explicit discard is a visible, reviewable decision. One idiom is
// exempt: `defer f.Close()` on an *os.File, the conventional
// read-side close (write paths must close explicitly and check, as
// cmd/edgesim does).
package closecheck

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags discarded Flush/Close/Seal/Commit errors.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "forbid unchecked errors from Flush/Close/Seal/Commit",
	Run:  run,
}

var checked = map[string]bool{"Flush": true, "Close": true, "Seal": true, "Commit": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkCall(pass, call, false)
				}
			case *ast.DeferStmt:
				checkCall(pass, n.Call, true)
			case *ast.GoStmt:
				checkCall(pass, n.Call, false)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, deferred bool) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !checked[fn.Name()] {
		return
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil || !lastIsError(sig.Results()) {
		return
	}
	if deferred && isOSFile(recv.Type()) {
		return // conventional read-side close
	}
	pass.Reportf(call.Pos(),
		"unchecked error from (%s).%s; handle it, or assign to _ to make the discard explicit",
		types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)), fn.Name())
}

func lastIsError(res *types.Tuple) bool {
	if res == nil || res.Len() == 0 {
		return false
	}
	named, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isOSFile(t types.Type) bool {
	return lintutil.NamedTypeIn(t, "os", "File")
}
