// Fixture for the closecheck analyzer.
package ccfix

import (
	"bufio"
	"io"
	"os"
)

type enc struct{}

func (enc) Close() error  { return nil }
func (enc) Flush() error  { return nil }
func (enc) Seal() error   { return nil }
func (enc) Commit() error { return nil }

type noerr struct{}

func (noerr) Close()  {}
func (noerr) Commit() {}

func bad(e enc, bw *bufio.Writer) {
	e.Close()        // want "unchecked error from \\(enc\\).Close"
	bw.Flush()       // want "unchecked error from \\(\\*bufio.Writer\\).Flush"
	defer e.Seal()   // want "unchecked error from \\(enc\\).Seal"
	go e.Flush()     // want "unchecked error from \\(enc\\).Flush"
	e.Commit()       // want "unchecked error from \\(enc\\).Commit"
	defer e.Commit() // want "unchecked error from \\(enc\\).Commit"
}

// --- accepted forms ---

func okFile(f *os.File) {
	defer f.Close() // the conventional read-side close
}

func okExplicit(e enc) error {
	_ = e.Close() // visible, reviewable discard
	if err := e.Flush(); err != nil {
		return err
	}
	return e.Seal()
}

func okNoError(n noerr) {
	n.Close()  // returns nothing: nothing to drop
	n.Commit() // likewise
}

func okCommit(e enc) error {
	_ = e.Commit() // visible, reviewable discard
	return e.Commit()
}

func okCloser(c io.Closer) error {
	return c.Close()
}
