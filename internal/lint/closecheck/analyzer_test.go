package closecheck_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/closecheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, closecheck.Analyzer, "ccfix")
}
