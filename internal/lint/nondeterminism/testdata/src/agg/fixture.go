// Fixture for the nondeterminism analyzer: the import path "agg"
// matches the deterministic-package set, so the contracts apply.
package agg

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want "wall-clock read time.Now in deterministic package"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since in deterministic package"
}

func draw() int {
	return rand.Int() // want "global math/rand draw rand.Int in deterministic package"
}

func emit(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "order-sensitive sink"
	}
}

func accum(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v // want "floating-point accumulation into t during map iteration"
	}
	return t
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys during map iteration without a subsequent sort"
	}
	return keys
}

func send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send during map iteration"
	}
}

type counter struct{}

func (counter) Add(int) {}

func feedAccumulator(m map[string]int, c counter) {
	for _, v := range m {
		c.Add(v) // want "c.Add called during map iteration feeds an order-sensitive sink"
	}
}

// --- order-independent patterns that must NOT be flagged ---

func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func intoMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intSum(m map[string]int) int {
	var t int
	for _, v := range m {
		t += v
	}
	return t
}

func perEntry(m map[string]*counter) {
	for _, c := range m {
		c.Add(1) // receiver is the entry itself: per-key effect, order-free
	}
}

func sliceRange(xs []float64) float64 {
	var t float64
	for _, v := range xs { // slices iterate in order; accumulation is fine
		t += v
	}
	return t
}
