// Fixture: import path "wallclockok" is not in the deterministic set,
// so wall clocks and map iteration pass without findings.
package wallclockok

import (
	"fmt"
	"time"
)

func clock() time.Time { return time.Now() }

func emit(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
