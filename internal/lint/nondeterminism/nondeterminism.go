// Package nondeterminism defines an analyzer enforcing the repo's
// byte-identical-output contract (DESIGN.md §7) inside the
// deterministic packages (world, study, agg, tdigest, sample, hdratio,
// stats, report).
//
// Three things are flagged there:
//
//  1. Wall-clock reads: time.Now, time.Since, time.Until. Simulated
//     time is derived from sample offsets; wall clocks belong to
//     observability packages (obs, lb). A legitimate wall-clock
//     consumer inside a deterministic package (e.g. the study's
//     elapsed-time span) annotates the single site with
//     //edgelint:allow nondeterminism: reason.
//
//  2. Global math/rand state: calls to package-level functions of
//     math/rand or math/rand/v2. Randomness must flow from
//     repro/internal/rng splits so streams are reproducible and
//     independent per subsystem.
//
//  3. Map iteration feeding order-sensitive sinks. Go randomises map
//     iteration order, so a `for range m` may not append to slices
//     that outlive the loop (unless the slice is sorted later in the
//     same function), accumulate into floating-point variables
//     (float addition does not commute bit-for-bit), send on channels,
//     or call emitting/accumulating methods (Write*, Fprint*, Encode,
//     Add, Offer, ...) on state declared outside the loop. Writes into
//     other maps, integer accumulation, and per-entry mutation of the
//     map's own values are order-independent and pass.
package nondeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags nondeterminism hazards in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall clocks, global math/rand, and order-sensitive map iteration in deterministic packages",
	Run:  run,
}

// sinkNames are method/function names that emit or accumulate in call
// order; calling one on loop-external state during map iteration makes
// the output depend on map order.
var sinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Encode": true, "Add": true, "Offer": true, "Observe": true,
	"Record": true, "Push": true, "Emit": true, "Inc": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.IsDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			if isMapRange(pass, n) {
				checkMapRange(pass, n, fd)
			}
		}
		return true
	})
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if lintutil.IsPkgLevelFunc(fn, "time", "Now", "Since", "Until") {
		pass.Reportf(call.Pos(),
			"wall-clock read time.%s in deterministic package %s; derive times from sample offsets, or annotate the wall-clock consumer with //edgelint:allow nondeterminism: reason",
			fn.Name(), pass.Pkg.Name())
		return
	}
	pkg := fn.Pkg().Path()
	if (pkg == "math/rand" || pkg == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil {
		pass.Reportf(call.Pos(),
			"global math/rand draw rand.%s in deterministic package %s; draw from a repro/internal/rng stream instead",
			fn.Name(), pass.Pkg.Name())
	}
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange walks one map-iteration body looking for
// order-sensitive sinks. Nested map ranges are skipped here; the outer
// Inspect visits them on their own.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fd *ast.FuncDecl) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass, n) {
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send during map iteration; map order is random, so the receiver sees a random order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, n, rng, fd)
		case *ast.CallExpr:
			checkMapRangeCall(pass, n, rng)
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, fd *ast.FuncDecl) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			root := lintutil.RootIdent(lhs)
			if root == nil || lintutil.DeclaredWithin(pass.TypesInfo, root, rng) {
				continue
			}
			if t, ok := pass.TypesInfo.Types[lhs]; ok && isFloatKind(t.Type) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation into %s during map iteration; float addition does not commute bit-for-bit — iterate sorted keys", root.Name)
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(as.Lhs) {
				continue
			}
			root := lintutil.RootIdent(as.Lhs[i])
			if root == nil || lintutil.DeclaredWithin(pass.TypesInfo, root, rng) {
				continue
			}
			if sortedAfter(pass, fd, root, rng.End()) {
				continue
			}
			pass.Reportf(as.Pos(),
				"append to %s during map iteration without a subsequent sort; the slice order is random — sort it or iterate sorted keys", root.Name)
		}
	}
}

func checkMapRangeCall(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !sinkNames[sel.Sel.Name] {
		return
	}
	// Conversions and field-typed funcs are not method sinks.
	if lintutil.CalleeFunc(pass.TypesInfo, call) == nil {
		return
	}
	root := lintutil.RootIdent(sel.X)
	if root == nil {
		return
	}
	// Package-qualified calls (fmt.Fprintf) always emit outward; method
	// calls only matter when the receiver outlives the loop.
	if _, isPkg := pass.TypesInfo.ObjectOf(root).(*types.PkgName); !isPkg {
		if lintutil.DeclaredWithin(pass.TypesInfo, root, rng) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"%s.%s called during map iteration feeds an order-sensitive sink; map order is random — iterate sorted keys", root.Name, sel.Sel.Name)
}

func isFloatKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether ident's slice is passed to a sort
// function after pos within fn — the collect-keys-then-sort idiom.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, ident *ast.Ident, pos token.Pos) bool {
	obj := pass.TypesInfo.ObjectOf(ident)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found || len(call.Args) == 0 {
			return !found
		}
		callee := lintutil.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort":
			switch callee.Name() {
			case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch callee.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		argRoot := lintutil.RootIdent(call.Args[0])
		if argRoot != nil && pass.TypesInfo.ObjectOf(argRoot) == obj {
			found = true
		}
		return !found
	})
	return found
}
