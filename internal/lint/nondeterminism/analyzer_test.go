package nondeterminism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nondeterminism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, nondeterminism.Analyzer, "agg")
}

func TestNonDeterministicPackageExempt(t *testing.T) {
	// The same hazards in a package outside the deterministic set (the
	// fixture's import path is "wallclockok") produce no findings.
	analysistest.Run(t, nondeterminism.Analyzer, "wallclockok")
}
