// Fixture for the rngsplit analyzer.
package rsfix

import (
	"math/rand" // want "import of math/rand outside internal/rng"

	"repro/internal/rng"
)

func use(r *rand.Rand) int { return r.Int() }

func leakGo(r *rng.RNG) {
	go func() {
		_ = r.Float64() // want "r of type \\*repro/internal/rng.RNG captured by goroutine closure"
	}()
}

type group struct{}

func (group) Go(f func())            { go f() }
func (group) GoPool(n int, f func()) { go f() }

func leakPool(g group, r *rng.RNG) {
	g.Go(func() {
		_ = r.IntN(3) // want "captured by goroutine closure"
	})
}

func leakStd(g group, r *rand.Rand) {
	g.GoPool(2, func() {
		_ = r.Int() // want "captured by goroutine closure"
	})
}

// --- the blessed pattern: hand the child in by parameter, never by
// capture, so each goroutine's stream lineage is explicit ---

func passAsParam(parent *rng.RNG) {
	go func(r *rng.RNG) {
		_ = r.Float64()
	}(parent.Child("w"))
}
