// Package rngsplit defines an analyzer enforcing the repo's RNG
// lineage contract: every random stream derives from
// repro/internal/rng (explicit seeds, splittable children), and no
// goroutine shares a generator with another.
//
// Two things are flagged, repo-wide (internal/rng itself and _test.go
// files are exempt):
//
//  1. Imports of math/rand or math/rand/v2 outside internal/rng.
//     Direct use of the stock generators bypasses the seed/split
//     discipline that makes simulations reproducible.
//
//  2. Generator values (*rng.RNG, *rand.Rand) captured by goroutine
//     closures — a closure launched via `go`, Group.Go, or
//     Group.GoPool that reads a generator declared outside itself.
//     Sharing a generator across goroutines is both a data race and a
//     scheduling-order dependency; each goroutine must derive its own
//     child stream (rng.Child / rng.ChildAt) before the spawn.
package rngsplit

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags RNG lineage violations.
var Analyzer = &analysis.Analyzer{
	Name: "rngsplit",
	Doc:  "require RNG lineage from internal/rng splits; forbid generators shared across goroutine closures",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.PathHasSuffix(pass.Pkg.Path(), "internal/rng") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			switch p := importPath(imp); p {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/rng; RNG lineage must come from repro/internal/rng splits", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkClosure(pass, lit, "go statement")
				}
			case *ast.CallExpr:
				if name, ok := spawnMethod(n); ok {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							checkClosure(pass, lit, name)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func importPath(imp *ast.ImportSpec) string {
	return imp.Path.Value[1 : len(imp.Path.Value)-1]
}

// spawnMethod recognises calls that launch their closure argument on a
// new goroutine (the pipeline group spawn points).
func spawnMethod(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Go", "GoPool":
		return sel.Sel.Name, true
	}
	return "", false
}

// checkClosure flags free variables of lit that carry generator state.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, how string) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		// Free variable: declared outside the closure's own range.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if !isGenerator(obj.Type()) {
			return true
		}
		seen[obj] = true
		pass.Reportf(id.Pos(),
			"%s of type %s captured by goroutine closure (%s); derive a per-goroutine child stream with rng.Child/ChildAt before spawning",
			obj.Name(), types.TypeString(obj.Type(), nil), how)
		return true
	})
}

func isGenerator(t types.Type) bool {
	return lintutil.NamedTypeIn(t, "internal/rng", "RNG") ||
		lintutil.NamedTypeIn(t, "math/rand", "Rand") ||
		lintutil.NamedTypeIn(t, "math/rand/v2", "Rand")
}
