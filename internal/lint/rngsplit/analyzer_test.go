package rngsplit_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/rngsplit"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, rngsplit.Analyzer, "rsfix")
}
