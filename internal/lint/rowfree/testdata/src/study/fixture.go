// Fixture for the rowfree analyzer: the package is named study, so the
// segment hot path's columnar contract applies. Suppression via
// //edgelint:allow is the suite's job; this fixture checks the raw
// findings.
package study

import (
	"context"

	"repro/internal/sample"
	"repro/internal/segstore"
)

func materialize(b *segstore.ColumnBatch) []sample.Sample {
	return b.AppendRows(nil) // want "AppendRows materializes rows from a column batch"
}

func rowScan(ctx context.Context, r *segstore.Reader) error {
	return r.Scan(ctx, 1, nil, func(rows []sample.Sample) error { return nil }) // want "Scan row-emitting segment read"
}

func readSeg(r *segstore.Reader, m segstore.SegmentMeta) ([]sample.Sample, error) {
	return r.ReadSegment(m) // want "ReadSegment row-emitting segment read"
}

func rowDecode(data []byte) ([]sample.Sample, error) {
	return segstore.DecodeSegment(data) // want "DecodeSegment row-emitting segment read"
}

// --- accepted forms ---

func columnar(ctx context.Context, r *segstore.Reader) error {
	return r.ScanColumns(ctx, 1, nil, func(b *segstore.ColumnBatch) error {
		b.Release()
		return nil
	})
}

func columnarDecode(data []byte) (*segstore.ColumnBatch, error) {
	return segstore.DecodeSegmentColumns(data)
}
