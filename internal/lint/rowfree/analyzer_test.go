package rowfree_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/rowfree"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, rowfree.Analyzer, "study")
}
