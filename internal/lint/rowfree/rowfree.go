// Package rowfree defines an analyzer for the segment read path's
// columnar contract (DESIGN.md §12): inside internal/study, decoded
// column batches are the hot-path currency, and materializing
// per-row sample.Sample values out of the segment store is a
// regression waiting to happen — a convenience loop quietly puts the
// row conversion back on every scanned sample.
//
// In packages named study (_test.go files exempt — the row oracle
// comparisons live there), a call is flagged when it converts segment
// data back to rows:
//
//   - ColumnBatch.AppendRows — batch-to-row materialization;
//   - Reader.Scan, Reader.ReadSegment, DecodeSegment — row-emitting
//     segment reads (ScanColumns / DecodeSegmentColumns are the
//     columnar equivalents).
//
// Intentional uses — the row oracle, per-sample fault decisions —
// carry an //edgelint:allow rowfree: reason directive, so every row
// materialization on the hot path is a recorded decision.
package rowfree

import (
	"go/ast"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags row materialization on the segment hot path.
var Analyzer = &analysis.Analyzer{
	Name: "rowfree",
	Doc:  "keep internal/study's segment path on the columnar currency (no per-row sample.Sample materialization)",
	Run:  run,
}

// rowCalls maps the flagged segstore functions to what the finding
// should call them.
var rowCalls = map[string]string{
	"AppendRows":    "materializes rows from a column batch",
	"Scan":          "row-emitting segment read",
	"ReadSegment":   "row-emitting segment read",
	"DecodeSegment": "row-emitting segment read",
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathHasSuffix(pass.Pkg.Path(), "study") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !lintutil.PathHasSuffix(fn.Pkg().Path(), "segstore") {
				return true
			}
			what, ok := rowCalls[fn.Name()]
			if !ok {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s %s on the segment hot path; stay on the columnar currency (ScanColumns, AddBatch) or record the reason with //edgelint:allow rowfree",
				fn.Name(), what)
			return true
		})
	}
	return nil, nil
}
