// Fixture for the poisonpath analyzer: importing the real
// repro/internal/pipeline makes this package a pipeline consumer.
package ppfix

import (
	"context"

	"repro/internal/pipeline"
)

func noCtxGroup() {
	g := pipeline.NewGroup(nil) // want "noCtxGroup creates a pipeline group but has no context.Context parameter"
	_ = g.Wait()
}

func rawGo() {
	done := make(chan struct{})
	go func() { close(done) }() // want "rawGo spawns a goroutine but has no context.Context parameter"
	<-done
}

func severed(ctx context.Context) error {
	g := pipeline.NewGroup(context.Background()) // want "severed has a context.Context parameter but roots its pipeline group in context.Background"
	_ = ctx
	return g.Wait()
}

// --- accepted forms ---

func threaded(ctx context.Context) error {
	g := pipeline.NewGroup(ctx)
	g.Go(func(ctx context.Context) error { return nil })
	return g.Wait()
}

func submitOnly(g *pipeline.Group) {
	// No spawn of its own: the group hands its context to each stage.
	g.Go(func(ctx context.Context) error { return nil })
}
