package poisonpath_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/poisonpath"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, poisonpath.Analyzer, "ppfix")
}
