// Package poisonpath defines an analyzer for the pipeline's
// first-error poisoning contract (internal/pipeline): when one stage
// fails, the shared context is cancelled with the error as cause and
// every other stage must observe it. That only works if cancellation
// can reach the goroutines — so any function that spawns concurrency
// in a pipeline-consuming package must thread a context.Context.
//
// In packages that import internal/pipeline (_test.go files and `func
// main` exempt — main owns the root context), a function is flagged
// when it
//
//  1. contains a raw `go` statement, or calls pipeline.NewGroup,
//     without declaring a context.Context parameter (goroutines it
//     spawns are unreachable by the caller's cancellation); or
//
//  2. has a context.Context parameter but creates its group from
//     context.Background() or context.TODO(), severing the caller's
//     poisoning path.
//
// Functions that only submit work to an existing *pipeline.Group are
// fine: the group supplies its context to every stage closure.
package poisonpath

import (
	"go/ast"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags concurrency spawned outside the poisoning path.
var Analyzer = &analysis.Analyzer{
	Name: "poisonpath",
	Doc:  "require context.Context on functions spawning goroutines in pipeline-consumer packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if !lintutil.ImportsPath(f, "internal/pipeline") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Pkg.Name() == "main" && fd.Name.Name == "main" && fd.Recv == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	hasCtx := hasContextParam(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !hasCtx {
				pass.Reportf(n.Pos(),
					"%s spawns a goroutine but has no context.Context parameter; pipeline poisoning cannot reach it", fd.Name.Name)
			}
		case *ast.CallExpr:
			if !isNewGroup(pass, n) {
				return true
			}
			if !hasCtx {
				pass.Reportf(n.Pos(),
					"%s creates a pipeline group but has no context.Context parameter; the group cannot inherit the caller's cancellation", fd.Name.Name)
				return true
			}
			for _, arg := range n.Args {
				if isBackgroundCtx(pass, arg) {
					pass.Reportf(arg.Pos(),
						"%s has a context.Context parameter but roots its pipeline group in context.%s, severing the caller's poisoning path",
						fd.Name.Name, lintutil.CalleeFunc(pass.TypesInfo, arg.(*ast.CallExpr)).Name())
				}
			}
		}
		return true
	})
}

func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if lintutil.NamedTypeIn(pass.TypesInfo.TypeOf(field.Type), "context", "Context") {
			return true
		}
	}
	return false
}

func isNewGroup(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "NewGroup" && fn.Pkg() != nil &&
		lintutil.PathHasSuffix(fn.Pkg().Path(), "internal/pipeline")
}

func isBackgroundCtx(pass *analysis.Pass, arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	return lintutil.IsPkgLevelFunc(fn, "context", "Background", "TODO")
}
