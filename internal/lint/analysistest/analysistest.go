// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want comments, mirroring the
// x/tools package of the same name on the subset of syntax edgelint
// uses.
//
// Fixtures live in <analyzer>/testdata/src/<importpath>/: the
// directory name under src is the fixture's import path, so a fixture
// named "agg" exercises the deterministic-package rules exactly as
// repro/internal/agg would. Fixture files may import real repro/...
// packages (they resolve against this module) or sibling fixture
// packages under the same testdata/src root (GOPATH-style).
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by exactly one diagnostic.
//
// For analyzers that export object facts, a want of the form
//
//	func f() {} // want f:"fact regexp"
//
// asserts that a fact whose String() matches the regexp is exported
// for the object named f declared on that line. Fact wants and
// diagnostic wants mix freely on one line. When the analyzer declares
// FactTypes, the fixture's module-internal and fixture-sibling imports
// are analyzed first (findings discarded) so facts flow into the
// fixture exactly as they do in a real run.
package analysistest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

// Run analyses the fixture package testdata/src/<pkgpath> (relative to
// the calling test's directory) with a and compares diagnostics and
// exported facts against its // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	_, caller, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	srcRoot := filepath.Join(filepath.Dir(caller), "testdata", "src")
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgpath))

	moduleDir, err := load.FindModuleRoot(filepath.Dir(caller))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := load.NewLoader(moduleDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.AddSrcDir(srcRoot)
	pkg, err := loader.LoadDir(dir, pkgpath)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", pkgpath, err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("analysistest: fixture %s has type errors: %v", pkgpath, pkg.Errors)
	}

	// Fact-producing analyzers see their dependencies' facts in real
	// runs; reproduce that by analyzing the fixture's dependencies
	// (loaded before it, so loader order is dependency order) first.
	store := suite.NewFactStore()
	if len(a.FactTypes) > 0 {
		for _, dep := range loader.Packages() {
			if dep == pkg {
				continue
			}
			if _, _, err := suite.RunPackageFacts(dep, []*analysis.Analyzer{a}, store); err != nil {
				t.Fatalf("analysistest: analyzing dependency %s: %v", dep.Path, err)
			}
		}
	}
	findings, facts, err := suite.RunPackageFacts(pkg, []*analysis.Analyzer{a}, store)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if !wants.match(key, "", f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, of := range facts {
		pos := pkg.Fset.Position(of.Object.Pos())
		key := lineKey{pos.Filename, pos.Line}
		text := of.Object.Name() + ":" + factString(of.Fact)
		if !wants.match(key, of.Object.Name(), factString(of.Fact)) {
			t.Errorf("%s: unexpected fact: %s", pos, text)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				kind := "diagnostic"
				if w.name != "" {
					kind = "fact on object " + w.name
				}
				t.Errorf("%s:%d: expected %s matching %q, got none", key.file, key.line, kind, w.re)
			}
		}
	}
}

// factString renders a fact for matching, preferring its Stringer.
func factString(f analysis.Fact) string {
	if s, ok := f.(interface{ String() string }); ok {
		return s.String()
	}
	return ""
}

type lineKey struct {
	file string
	line int
}

// want is one expectation: a diagnostic regexp (name == "") or a fact
// regexp bound to the object declared on the line (name != "").
type want struct {
	name    string
	re      *regexp.Regexp
	matched bool
}

type wantMap map[lineKey][]*want

func (m wantMap) match(key lineKey, name, msg string) bool {
	for _, w := range m[key] {
		if !w.matched && w.name == name && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE matches one expectation: an optional object-name prefix
// (fact wants) followed by a quoted regexp.
var wantRE = regexp.MustCompile(`(?:([A-Za-z_]\w*):)?("(?:[^"\\]|\\.)*")`)

func collectWants(t *testing.T, pkg *load.Package) wantMap {
	t.Helper()
	out := wantMap{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					// The quoted pattern is a Go string literal, so \\( in
					// the fixture reaches the regexp engine as \(.
					pat, err := strconv.Unquote(m[2])
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, m[2], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					out[key] = append(out[key], &want{name: m[1], re: re})
				}
			}
		}
	}
	return out
}
