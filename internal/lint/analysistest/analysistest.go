// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want comments, mirroring the
// x/tools package of the same name on the subset of syntax edgelint
// uses.
//
// Fixtures live in <analyzer>/testdata/src/<importpath>/: the
// directory name under src is the fixture's import path, so a fixture
// named "agg" exercises the deterministic-package rules exactly as
// repro/internal/agg would. Fixture files may import real repro/...
// packages; they resolve against this module.
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by exactly one diagnostic.
package analysistest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

// Run analyses the fixture package testdata/src/<pkgpath> (relative to
// the calling test's directory) with a and compares diagnostics
// against its // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	_, caller, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	dir := filepath.Join(filepath.Dir(caller), "testdata", "src", filepath.FromSlash(pkgpath))

	moduleDir, err := load.FindModuleRoot(filepath.Dir(caller))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := load.NewLoader(moduleDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir, pkgpath)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", pkgpath, err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("analysistest: fixture %s has type errors: %v", pkgpath, pkg.Errors)
	}

	findings, err := suite.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if !wants.match(key, f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantMap map[lineKey][]*want

func (m wantMap) match(key lineKey, msg string) bool {
	for _, w := range m[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, pkg *load.Package) wantMap {
	t.Helper()
	out := wantMap{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				ms := wantRE.FindAllString(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					// The quoted pattern is a Go string literal, so \\( in
					// the fixture reaches the regexp engine as \(.
					pat, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, m, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}
