// Package lintutil holds the pieces the edgelint analyzers share: the
// deterministic-package set, //edgelint:allow directive parsing, and
// small AST/type helpers.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterministicPkgs names the packages whose outputs must be
// byte-identical run to run (DESIGN.md §7): the world model, the study
// pipeline, aggregation, sketches, samples, the HDratio methodology,
// stats, and report rendering. Matching is by final import-path
// segment so analysistest fixtures (import path "agg") behave like the
// real packages (import path "repro/internal/agg").
var DeterministicPkgs = map[string]bool{
	"world":   true,
	"study":   true,
	"agg":     true,
	"tdigest": true,
	"sample":  true,
	"hdratio": true,
	"stats":   true,
	"report":  true,
}

// IsDeterministicPkg reports whether the import path names one of the
// packages under the determinism contract.
func IsDeterministicPkg(path string) bool {
	return DeterministicPkgs[path[strings.LastIndex(path, "/")+1:]]
}

// PathHasSuffix reports whether an import path equals suffix or ends
// with "/"+suffix. Analyzers match contract packages this way so that
// fixture modules can stand in for the real tree.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsTestFile reports whether the file behind pos is a _test.go file.
// The edgelint contracts target production code; tests may use wall
// clocks, ad-hoc RNGs, and discarded closes freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// RootIdent returns the leftmost identifier of a selector / index /
// call chain (the x in x.a.b[i].c), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}

// DeclaredWithin reports whether id's object is declared inside the
// source range of node. Used to distinguish loop-local state from
// state that outlives a map iteration.
func DeclaredWithin(info *types.Info, id *ast.Ident, node ast.Node) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// CalleeFunc resolves a call to the *types.Func it invokes (method or
// package function), or nil for builtins, conversions, and func-typed
// values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// IsPkgLevelFunc reports whether fn is the package-level function
// pkgPath.name (pkgPath matched exactly — used for stdlib packages).
func IsPkgLevelFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// NamedTypeIn reports whether t (after pointer unwrapping) is the named
// type name declared in a package whose path ends with pkgSuffix.
func NamedTypeIn(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// ImportsPath reports whether the file imports a path ending with
// suffix.
func ImportsPath(f *ast.File, suffix string) bool {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if PathHasSuffix(p, suffix) {
			return true
		}
	}
	return false
}

// DirectivePrefix introduces an edgelint suppression comment:
//
//	//edgelint:allow analyzer[,analyzer]: reason
//
// A directive suppresses findings from the named analyzers on its own
// line and on the line that follows (so it works both as a trailing
// comment and as a comment above the offending statement). The reason
// is mandatory: a suppression without a recorded justification is
// itself a lint error, as is a directive that suppresses nothing.
const DirectivePrefix = "//edgelint:allow"

// Directive is one parsed //edgelint:allow comment.
type Directive struct {
	// Pos locates the comment.
	Pos token.Position
	// Analyzers are the analyzer names the directive silences.
	Analyzers []string
	// Reason is the justification text after the colon.
	Reason string
	// Malformed, when non-empty, describes a syntax problem; the suite
	// reports it as a finding rather than honouring the directive.
	Malformed string
	// Used is set by the suite when the directive suppresses at least
	// one finding.
	Used bool
}

// Allows reports whether the directive covers the named analyzer.
func (d *Directive) Allows(name string) bool {
	for _, a := range d.Analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// ParseDirectives extracts every edgelint directive in the file.
func ParseDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			d := &Directive{Pos: fset.Position(c.Pos())}
			rest = strings.TrimSpace(rest)
			names, reason, ok := strings.Cut(rest, ":")
			if !ok {
				d.Malformed = "missing reason: want //edgelint:allow analyzer[,analyzer]: reason"
			} else {
				d.Reason = strings.TrimSpace(reason)
				if d.Reason == "" {
					d.Malformed = "empty reason: a suppression must record its justification"
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n != "" {
						d.Analyzers = append(d.Analyzers, n)
					}
				}
				if len(d.Analyzers) == 0 {
					d.Malformed = "no analyzer names before the colon"
				}
			}
			out = append(out, d)
		}
	}
	return out
}
