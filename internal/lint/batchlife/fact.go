package batchlife

import (
	"fmt"
	"strings"
)

// ParamMode classifies what a function does with a *ColumnBatch
// parameter — the per-function summary that makes batchlife
// interprocedural across segstore → collector → agg/analysis/study.
type ParamMode int

const (
	// ParamNone: not a batch parameter.
	ParamNone ParamMode = iota
	// ParamBorrows: the function uses the batch but never releases it;
	// the caller keeps ownership (collector.OfferColumns,
	// agg.Store.AddBatch, Overview.AddColumns).
	ParamBorrows
	// ParamConsumes: the function takes ownership — every path through
	// it releases the batch or hands it on (study ingest.feedColumns).
	// The caller must not touch the batch after the call.
	ParamConsumes
)

func (m ParamMode) String() string {
	switch m {
	case ParamBorrows:
		return "borrows"
	case ParamConsumes:
		return "consumes"
	default:
		return "none"
	}
}

// CallbackFact records that a function hands an owned batch to one of
// its func-typed parameters: parameter Param is called with an owned
// *ColumnBatch as its Arg-th argument. A function literal passed at
// that position therefore owns its Arg-th parameter and must release
// it on every path — this is how Reader.ScanColumns's emit contract
// reaches call sites in other packages.
type CallbackFact struct {
	Param int `json:"param"`
	Arg   int `json:"arg"`
}

// FuncFact is the exported per-function ownership summary.
type FuncFact struct {
	// Params holds one mode per parameter (receiver excluded).
	Params []ParamMode `json:"params,omitempty"`
	// Callbacks lists func-typed parameters that receive batch
	// ownership when called.
	Callbacks []CallbackFact `json:"callbacks,omitempty"`
	// ReturnsOwned reports that the function returns a batch the caller
	// owns (and must release).
	ReturnsOwned bool `json:"returnsOwned,omitempty"`
}

// AFact marks FuncFact as an analysis fact.
func (*FuncFact) AFact() {}

// String renders the fact compactly; analysistest want-fact annotations
// match against this form.
func (f *FuncFact) String() string {
	var parts []string
	for i, m := range f.Params {
		if m != ParamNone {
			parts = append(parts, fmt.Sprintf("param%d=%s", i, m))
		}
	}
	for _, cb := range f.Callbacks {
		parts = append(parts, fmt.Sprintf("callback%d.arg%d=owned", cb.Param, cb.Arg))
	}
	if f.ReturnsOwned {
		parts = append(parts, "returns=owned")
	}
	if len(parts) == 0 {
		return "batchlife()"
	}
	return "batchlife(" + strings.Join(parts, " ") + ")"
}

// equal reports whether two facts carry the same summary (fixpoint
// termination test).
func (f *FuncFact) equal(g *FuncFact) bool {
	if f == nil || g == nil {
		return f == g
	}
	if f.ReturnsOwned != g.ReturnsOwned || len(f.Params) != len(g.Params) || len(f.Callbacks) != len(g.Callbacks) {
		return false
	}
	for i := range f.Params {
		if f.Params[i] != g.Params[i] {
			return false
		}
	}
	for i := range f.Callbacks {
		if f.Callbacks[i] != g.Callbacks[i] {
			return false
		}
	}
	return true
}

// trivial reports a fact carrying no information (not worth exporting).
func (f *FuncFact) trivial() bool {
	if f.ReturnsOwned || len(f.Callbacks) > 0 {
		return false
	}
	for _, m := range f.Params {
		if m != ParamNone {
			return false
		}
	}
	return true
}
