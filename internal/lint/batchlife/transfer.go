package batchlife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// transfer applies one CFG node's effect to st, reporting protocol
// violations through rep (silenced during fixpoint rounds).
func (fu *funcUnit) transfer(n ast.Node, st state, rep *sink) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fu.assign(n, st, rep)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fu.valueSpec(vs, st, rep)
				}
			}
		}
	case *ast.ReturnStmt:
		fu.ret(n, st, rep)
	case *ast.DeferStmt:
		fu.deferStmt(n, st, rep)
	case *ast.ExprStmt:
		fu.scan(n.X, st, rep)
	case *ast.GoStmt:
		fu.scan(n.Call, st, rep)
	case *ast.SendStmt:
		fu.scan(n.Chan, st, rep)
		if id, v := fu.trackedIdent(n.Value); v != nil && st[v].bits&stOwned != 0 {
			fu.handoff(id, v, st, rep)
		} else {
			fu.scan(n.Value, st, rep)
		}
	case *ast.IncDecStmt:
		fu.scan(n.X, st, rep)
	case *ast.RangeStmt:
		// Only the range operand lives in the header block; the body is
		// its own set of blocks.
		fu.scan(n.X, st, rep)
	case ast.Expr:
		// Lowered branch conditions, switch tags, case expressions.
		fu.scan(n, st, rep)
	}
}

// assign handles acquisitions, moves, overwrites, and escapes.
func (fu *funcUnit) assign(n *ast.AssignStmt, st state, rep *sink) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		fu.tupleAssign(n, st, rep)
		return
	}
	for i := range n.Lhs {
		fu.assignPair(n.Lhs[i], n.Rhs[i], st, rep)
	}
}

// tupleAssign handles b, err := acquire() and the pool-get comma-ok
// form b, _ := pool.Get().(*ColumnBatch).
func (fu *funcUnit) tupleAssign(n *ast.AssignStmt, st state, rep *sink) {
	rhs := ast.Unparen(n.Rhs[0])
	fu.scan(rhs, st, rep)

	// Which result positions produce a batch?
	var resTypes []types.Type
	switch r := rhs.(type) {
	case *ast.CallExpr:
		if tup, ok := fu.typeOf(r).(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				resTypes = append(resTypes, tup.At(i).Type())
			}
		}
	case *ast.TypeAssertExpr:
		// comma-ok: value, ok
		resTypes = []types.Type{fu.typeOf(r.X), types.Typ[types.Bool]}
		if t, ok := fu.c.pass.TypesInfo.Types[r.Type]; ok {
			resTypes[0] = t.Type
		}
	default:
		// Parallel assignment a, b = x, y never reaches here (len(Rhs)>1).
		return
	}

	var batchVar *types.Var
	view := false
	for i, lhs := range n.Lhs {
		if i >= len(resTypes) || !isBatchPtr(resTypes[i]) {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := fu.defOrUse(id)
		if v == nil || !fu.tracked[v] {
			continue
		}
		batchVar = v
		view = isSliceCall(fu.c.pass, rhs)
		fu.overwriteCheck(id, v, st, rep)
		fu.acquire(v, view, id.Pos(), st, rep)
	}
	if batchVar == nil {
		return
	}
	// Link the error result's variable so branching on it refines the
	// batch: on the error edge the callee returned no batch.
	for i, lhs := range n.Lhs {
		if i >= len(resTypes) || !isErrorType(resTypes[i]) {
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if ev := fu.defOrUse(id); ev != nil {
				fu.errLink[ev] = batchVar
			}
		}
	}
}

func (fu *funcUnit) assignPair(lhs, rhs ast.Expr, st state, rep *sink) {
	lhs, rhs = ast.Unparen(lhs), ast.Unparen(rhs)

	// Blank assignment evaluates the RHS and discards it — a plain use,
	// not a hand-off (`_ = b` does not discharge b's obligation).
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		fu.scan(rhs, st, rep)
		return
	}

	// LHS is a tracked batch variable: acquisition, move, or kill.
	if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
		if v := fu.defOrUse(id); v != nil && fu.tracked[v] {
			// Move: c := b transfers ownership between locals.
			if rid, rv := fu.trackedIdent(rhs); rv != nil {
				rvs := st[rv]
				if rvs.bits&stReleased != 0 {
					rep.reportf(rid.Pos(), "column batch %s is used after it may have been released", rid.Name)
				}
				fu.overwriteCheck(id, v, st, rep)
				st[v] = varState{bits: rvs.bits, view: rvs.view, acq: rvs.acq, deferred: false}
				rvs.bits = stHanded
				st[rv] = rvs
				return
			}
			fu.scan(rhs, st, rep)
			switch {
			case producesBatch(fu.c.pass, rhs):
				fu.overwriteCheck(id, v, st, rep)
				fu.acquire(v, isSliceCall(fu.c.pass, rhs), id.Pos(), st, rep)
			default:
				// b = nil, b = x.field, ...: the variable no longer holds
				// an obligation this scope created.
				fu.overwriteCheck(id, v, st, rep)
				st[v] = varState{}
			}
			return
		}
	}

	// LHS is a field, index, or global: a tracked RHS escapes.
	if rid, rv := fu.trackedIdent(rhs); rv != nil {
		vs := st[rv]
		switch {
		case vs.view:
			rep.reportf(rid.Pos(), "batch view %s escapes into a field or global; views must not outlive the scope releasing their parent", rid.Name)
			vs.bits = stHanded
			st[rv] = vs
		case vs.bits&stOwned != 0:
			fu.handoff(rid, rv, st, rep)
		default:
			fu.scan(rhs, st, rep)
		}
		fu.scan(lhs, st, rep)
		return
	}
	fu.scan(lhs, st, rep)
	fu.scan(rhs, st, rep)
}

func (fu *funcUnit) valueSpec(spec *ast.ValueSpec, st state, rep *sink) {
	if len(spec.Values) == 0 {
		for _, name := range spec.Names {
			if v := fu.defOrUse(name); v != nil && fu.tracked[v] {
				st[v] = varState{}
			}
		}
		return
	}
	if len(spec.Names) > 1 && len(spec.Values) == 1 {
		// var b, err = acquire(): rare; treat like the tuple form.
		fu.tupleAssign(&ast.AssignStmt{
			Lhs: identsToExprs(spec.Names), Tok: token.DEFINE, Rhs: spec.Values,
		}, st, rep)
		return
	}
	for i, name := range spec.Names {
		if i < len(spec.Values) {
			fu.assignPair(name, spec.Values[i], st, rep)
		}
	}
}

func identsToExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// overwriteCheck flags assigning over a variable that still owns a
// batch — the old batch becomes unreleasable.
func (fu *funcUnit) overwriteCheck(id *ast.Ident, v *types.Var, st state, rep *sink) {
	vs := st[v]
	if vs.bits&stOwned != 0 && !vs.deferred {
		rep.reportf(id.Pos(), "column batch %s is overwritten while it may still own a batch (acquired at %s)",
			id.Name, fu.c.pass.Fset.Position(vs.acq))
	}
}

func (fu *funcUnit) acquire(v *types.Var, view bool, pos token.Pos, st state, rep *sink) {
	st[v] = varState{bits: stOwned, view: view, acq: pos}
}

// handoff transfers ownership out of this scope.
func (fu *funcUnit) handoff(id *ast.Ident, v *types.Var, st state, rep *sink) {
	vs := st[v]
	if vs.bits&stReleased != 0 {
		rep.reportf(id.Pos(), "column batch %s is handed off after it may have been released", id.Name)
	}
	vs.bits = stHanded
	vs.deferred = false
	st[v] = vs
}

func (fu *funcUnit) release(id *ast.Ident, v *types.Var, pos token.Pos, st state, rep *sink) {
	vs := st[v]
	if vs.bits&stReleased != 0 {
		rep.reportf(pos, "column batch %s may be released twice", id.Name)
	} else if vs.bits&stHanded != 0 && vs.bits&(stOwned|stParam) == 0 {
		rep.reportf(pos, "column batch %s is released after its ownership was handed off", id.Name)
	}
	vs.bits = vs.bits&^(stOwned|stParam) | stReleased
	st[v] = vs
}

func (fu *funcUnit) ret(n *ast.ReturnStmt, st state, rep *sink) {
	for _, res := range n.Results {
		res := ast.Unparen(res)
		if id, v := fu.trackedIdent(res); v != nil {
			vs := st[v]
			if vs.bits&stReleased != 0 {
				rep.reportf(id.Pos(), "column batch %s is returned after it may have been released", id.Name)
			}
			if vs.bits&stOwned != 0 {
				if vs.deferred {
					rep.reportf(id.Pos(), "column batch %s is returned while a deferred Release still covers it", id.Name)
				}
				fu.returnsOwned = true
				vs.bits = stHanded
				st[v] = vs
			}
			continue
		}
		if producesBatch(fu.c.pass, res) {
			fu.returnsOwned = true
		}
		fu.scan(res, st, rep)
	}
}

func (fu *funcUnit) deferStmt(n *ast.DeferStmt, st state, rep *sink) {
	call := n.Call
	// defer x.Release(): discharges x's obligation at every exit.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && isBatchRecv(fu.typeOf(sel.X)) {
		if id, v := fu.trackedIdent(sel.X); v != nil {
			vs := st[v]
			if vs.deferred {
				rep.reportf(n.Pos(), "column batch %s already has a deferred Release; this one releases it twice", id.Name)
			}
			vs.deferred = true
			st[v] = vs
			return
		}
	}
	fu.scan(call, st, rep)
}

// scan walks an expression: it finds the ownership events (releases,
// hand-offs to consuming callees / func-valued parameters / composite
// literals / closures), claims the identifiers those events consume,
// reports remaining occurrences of released or handed-off batches as
// stale uses, then applies the events.
func (fu *funcUnit) scan(e ast.Expr, st state, rep *sink) {
	if e == nil {
		return
	}
	type rel struct {
		id  *ast.Ident
		v   *types.Var
		pos token.Pos
	}
	type hand struct {
		id  *ast.Ident
		v   *types.Var
		pos token.Pos
	}
	var rels []rel
	var hands []hand
	claimed := map[*ast.Ident]bool{}

	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing an owned batch takes its ownership
			// (goroutine hand-off, deferred cleanup). Borrowed params may
			// be captured freely.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := fu.c.pass.TypesInfo.Uses[id].(*types.Var); ok && fu.tracked[v] && st[v].bits&stOwned != 0 {
						hands = append(hands, hand{id, v, id.Pos()})
					}
				}
				return true
			})
			return false

		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, v := fu.trackedIdent(val); v != nil && st[v].bits&(stOwned|stHanded|stReleased) != 0 && st[v].bits&stParam == 0 {
					claimed[id] = true
					hands = append(hands, hand{id, v, id.Pos()})
				}
			}

		case *ast.CallExpr:
			fu.callEvents(n, st, claimed, func(id *ast.Ident, v *types.Var, pos token.Pos, isRelease bool) {
				if isRelease {
					rels = append(rels, rel{id, v, pos})
				} else {
					hands = append(hands, hand{id, v, pos})
				}
			})
		}
		return true
	})

	// Remaining identifier occurrences are plain uses.
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || claimed[id] {
			return true
		}
		v := fu.useOf(id)
		if v == nil {
			return true
		}
		vs := st[v]
		if vs.bits&stReleased != 0 {
			rep.reportf(id.Pos(), "column batch %s is used after it may have been released", id.Name)
		} else if vs.bits&stHanded != 0 && vs.bits&(stOwned|stParam) == 0 {
			rep.reportf(id.Pos(), "column batch %s is used after its ownership was handed off", id.Name)
		}
		return true
	})

	for _, h := range hands {
		fu.handoff(h.id, h.v, st, rep)
	}
	for _, r := range rels {
		fu.release(r.id, r.v, r.pos, st, rep)
	}
}

// callEvents classifies one call's effect on tracked arguments:
// Release intrinsics, consuming callees (by fact), hand-offs through
// func-valued parameters (deriving callback facts), and callback-fact
// call sites that grant ownership to literal arguments.
func (fu *funcUnit) callEvents(call *ast.CallExpr, st state, claimed map[*ast.Ident]bool, emit func(*ast.Ident, *types.Var, token.Pos, bool)) {
	// Intrinsic: methods of ColumnBatch itself. Release consumes its
	// receiver; everything else borrows it.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isBatchRecv(fu.typeOf(sel.X)) {
		if sel.Sel.Name == "Release" {
			if id, v := fu.trackedIdent(sel.X); v != nil {
				claimed[id] = true
				emit(id, v, call.Pos(), true)
			}
		}
		return
	}

	// Named callee with a fact: consuming parameters take ownership.
	if fn := lintutil.CalleeFunc(fu.c.pass.TypesInfo, call); fn != nil {
		fact := fu.factFor(fn)
		if fact == nil {
			return
		}
		for i, arg := range call.Args {
			if i < len(fact.Params) && fact.Params[i] == ParamConsumes {
				if id, v := fu.trackedIdent(arg); v != nil {
					claimed[id] = true
					emit(id, v, arg.Pos(), false)
				}
			}
		}
		for _, cb := range fact.Callbacks {
			if cb.Param < len(call.Args) {
				if lit, ok := ast.Unparen(call.Args[cb.Param]).(*ast.FuncLit); ok {
					m := fu.c.litOwned[lit]
					if m == nil {
						m = map[int]bool{}
						fu.c.litOwned[lit] = m
					}
					if !m[cb.Arg] {
						m[cb.Arg] = true
						fu.c.changed = true
					}
				}
			}
		}
		return
	}

	// Dynamic call through a func-valued variable: an owned batch
	// argument is a hand-off; if the variable is one of this function's
	// parameters, that is the callback-ownership contract to export.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if fv, ok := fu.c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if _, isSig := fv.Type().Underlying().(*types.Signature); isSig {
				for argIdx, arg := range call.Args {
					aid, v := fu.trackedIdent(arg)
					if v == nil || st[v].bits&stOwned == 0 {
						continue // borrowed params pass through untouched
					}
					claimed[aid] = true
					emit(aid, v, arg.Pos(), false)
					if pi := paramIndexOf(fu.u.sig, fv); pi >= 0 {
						fu.callbacks[CallbackFact{Param: pi, Arg: argIdx}] = true
					}
				}
			}
		}
	}
}

// factFor resolves a callee's summary: locally derived for this
// package's functions, imported for dependencies.
func (fu *funcUnit) factFor(fn *types.Func) *FuncFact {
	if f, ok := fu.c.facts[fn]; ok {
		return f
	}
	if fn.Pkg() == fu.c.pass.Pkg {
		return nil // not yet derived this round; the fixpoint converges
	}
	if fu.c.pass.ImportObjectFact == nil {
		return nil
	}
	var f FuncFact
	if fu.c.pass.ImportObjectFact(fn, &f) {
		return &f
	}
	return nil
}

func paramIndexOf(sig *types.Signature, v *types.Var) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// trackedIdent resolves e to a tracked batch variable's identifier.
func (fu *funcUnit) trackedIdent(e ast.Expr) (*ast.Ident, *types.Var) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v := fu.useOf(id)
	if v == nil {
		return nil, nil
	}
	return id, v
}

// useOf returns the tracked variable id refers to, or nil.
func (fu *funcUnit) useOf(id *ast.Ident) *types.Var {
	if v, ok := fu.c.pass.TypesInfo.Uses[id].(*types.Var); ok && fu.tracked[v] {
		return v
	}
	return nil
}

// defOrUse resolves an identifier in either defining or using position.
func (fu *funcUnit) defOrUse(id *ast.Ident) *types.Var {
	if v, ok := fu.c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := fu.c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (fu *funcUnit) typeOf(e ast.Expr) types.Type {
	if t, ok := fu.c.pass.TypesInfo.Types[e]; ok {
		return t.Type
	}
	return nil
}

// producesBatch reports whether evaluating e yields a fresh
// *ColumnBatch the assignee owns: any call returning one (the protocol
// says returned batches transfer ownership to the caller), a type
// assertion to *ColumnBatch (the pool-get idiom), or taking the
// address of a batch literal.
func producesBatch(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr, *ast.TypeAssertExpr:
		if t, ok := pass.TypesInfo.Types[e]; ok {
			return t.Type != nil && isBatchPtr(t.Type)
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if t, ok := pass.TypesInfo.Types[e]; ok {
				return t.Type != nil && isBatchPtr(t.Type)
			}
		}
	}
	return false
}

// isSliceCall reports whether e is a ColumnBatch.Slice call — the one
// acquisition form that creates a view rather than a root batch.
func isSliceCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Slice" {
		return false
	}
	if t, ok := pass.TypesInfo.Types[sel.X]; ok {
		return isBatchRecv(t.Type)
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
