// Package segstore is the miniature batch kernel for the allow-mode
// fixture module.
package segstore

// ColumnBatch stands in for the pooled columnar batch.
type ColumnBatch struct {
	n    int
	refs int
}

// Len returns the row count.
func (b *ColumnBatch) Len() int { return b.n }

// Release returns the batch to its pool.
func (b *ColumnBatch) Release() { b.refs-- }

// Read returns a batch the caller owns.
func Read() (*ColumnBatch, error) {
	return &ColumnBatch{n: 1}, nil
}
