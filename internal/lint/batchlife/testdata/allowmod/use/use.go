// Package use holds one suppressed and one bare batchlife violation,
// proving the //edgelint:allow path end to end through the suite.
package use

import "batchmod/segstore"

// Handed sends the batch somewhere the analyzer cannot see; the
// directive records why the apparent leak is fine.
func Handed() int {
	b, err := segstore.Read()
	if err != nil {
		return 0
	}
	n := b.Len()
	_ = b
	//edgelint:allow batchlife: ownership transfers through a side channel this fixture elides
	return n
}

// Bare leaks without an excuse and must stay a finding.
func Bare() int {
	b, err := segstore.Read()
	if err != nil {
		return 0
	}
	return b.Len()
}
