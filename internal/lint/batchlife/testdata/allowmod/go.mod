module batchmod

go 1.22
