// Package segstore is a miniature of the real segment store: a
// ColumnBatch kernel (whose methods are trusted, not analyzed) plus a
// Reader whose acquisition and callback contracts batchlife must
// summarize as facts for importing fixtures.
package segstore

import "errors"

// ColumnBatch stands in for the pooled columnar batch.
type ColumnBatch struct {
	n    int
	refs int
}

// Len returns the row count.
func (b *ColumnBatch) Len() int { return b.n }

// Release returns the batch to its pool.
func (b *ColumnBatch) Release() { b.refs-- }

// Slice cuts a view holding a reference on b.
func (b *ColumnBatch) Slice(lo, hi int) *ColumnBatch {
	b.refs++
	return &ColumnBatch{n: hi - lo}
}

// Reader hands out owned batches.
type Reader struct {
	segs []int
}

// Read returns a batch the caller owns.
func (r *Reader) Read() (*ColumnBatch, error) { // want Read:"batchlife\\(returns=owned\\)"
	if len(r.segs) == 0 {
		return nil, errors.New("empty")
	}
	return &ColumnBatch{n: r.segs[0]}, nil
}

// ScanColumns hands each decoded batch to emit, which takes ownership.
func (r *Reader) ScanColumns(emit func(*ColumnBatch) error) error { // want ScanColumns:"batchlife\\(callback0\\.arg0=owned\\)"
	for range r.segs {
		b, err := r.Read()
		if err != nil {
			return err
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

// Drain consumes the batch it is given.
func Drain(b *ColumnBatch) { // want Drain:"batchlife\\(param0=consumes\\)"
	b.Release()
}

// Peek only borrows.
func Peek(b *ColumnBatch) int { // want Peek:"batchlife\\(param0=borrows\\)"
	return b.Len()
}
