// Package batchuser exercises every batchlife diagnostic against the
// miniature segstore fixture, including the interprocedural cases that
// ride on imported facts (Read returns owned, ScanColumns's emit owns
// its argument, Drain consumes).
package batchuser

import "segstore"

var global *segstore.ColumnBatch

// missingReleaseOnError leaks b on the early-return path.
func missingReleaseOnError(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	if b.Len() > 3 {
		return 1 // want "column batch b may reach this exit without being released"
	}
	b.Release()
	return 2
}

// errorPathOK releases on every live path; the err != nil branch
// carries no batch (nil-refinement) and needs no release.
func errorPathOK(r *segstore.Reader) (int, error) {
	b, err := r.Read()
	if err != nil {
		return 0, err
	}
	n := b.Len()
	b.Release()
	return n, nil
}

func useAfterRelease(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	b.Release()
	return b.Len() // want "column batch b is used after it may have been released"
}

func doubleRelease(r *segstore.Reader) {
	b, err := r.Read()
	if err != nil {
		return
	}
	b.Release()
	b.Release() // want "column batch b may be released twice"
}

func escapingView(b *segstore.ColumnBatch) { // want escapingView:"batchlife\\(param0=borrows\\)"
	v := b.Slice(0, 1)
	global = v // want "batch view v escapes into a field or global"
}

func viewOK(b *segstore.ColumnBatch) int { // want viewOK:"batchlife\\(param0=borrows\\)"
	v := b.Slice(0, 1)
	n := v.Len()
	v.Release()
	return n
}

func deferOK(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	defer b.Release()
	return b.Len()
}

func doubleDefer(r *segstore.Reader) {
	b, err := r.Read()
	if err != nil {
		return
	}
	defer b.Release()
	defer b.Release() // want "column batch b already has a deferred Release"
}

func overwriteWhileOwned(r *segstore.Reader) {
	b, err := r.Read()
	if err != nil {
		return
	}
	b, err = r.Read() // want "column batch b is overwritten while it may still own a batch"
	if err != nil {
		return
	}
	b.Release()
}

// handToConsumer discharges the obligation through Drain's imported
// consumes fact.
func handToConsumer(r *segstore.Reader) {
	b, err := r.Read()
	if err != nil {
		return
	}
	segstore.Drain(b)
}

func useAfterHandoff(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	segstore.Drain(b)
	return b.Len() // want "column batch b is used after its ownership was handed off"
}

// borrowKeepsOwnership: Peek borrows, so the caller still must (and
// does) release.
func borrowKeepsOwnership(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	n := segstore.Peek(b)
	b.Release()
	return n
}

// scanEmitOK: the emit literal owns its parameter (ScanColumns's
// callback fact) and releases it on every path.
func scanEmitOK(r *segstore.Reader) error {
	return r.ScanColumns(func(b *segstore.ColumnBatch) error {
		defer b.Release()
		return nil
	})
}

// scanEmitLeak leaks the handed-off batch on the early return.
func scanEmitLeak(r *segstore.Reader) error {
	return r.ScanColumns(func(b *segstore.ColumnBatch) error {
		if b.Len() == 0 {
			return nil // want "column batch b may reach this exit without being released"
		}
		b.Release()
		return nil
	})
}

// produce returns an owned batch to its caller.
func produce(r *segstore.Reader) *segstore.ColumnBatch { // want produce:"batchlife\\(returns=owned\\)"
	b, err := r.Read()
	if err != nil {
		return nil
	}
	return b
}

// produceCallerLeak acquires through produce's return and never
// releases; the fall-off exit is the closing brace.
func produceCallerLeak(r *segstore.Reader) {
	b := produce(r)
	_ = b
} // want "column batch b may reach this exit without being released"

// mixedParamRelease releases its parameter on one path only — the
// summary is forced to consumes and the imbalance is reported.
func mixedParamRelease(b *segstore.ColumnBatch, n int) { // want "mixedParamRelease releases its \\*ColumnBatch parameter b on some paths but not others" mixedParamRelease:"batchlife\\(param0=consumes\\)"
	if n > 0 {
		b.Release()
	}
}

// localConsumeChain: the local helper's consumes fact is derived in
// the same package (fixpoint), so the hand-off discharges here too.
func localConsume(b *segstore.ColumnBatch) { // want localConsume:"batchlife\\(param0=consumes\\)"
	b.Release()
}

func localConsumeChain(r *segstore.Reader) {
	b, err := r.Read()
	if err != nil {
		return
	}
	localConsume(b)
}
