// Package batchlife enforces the pooled ColumnBatch ownership protocol
// (DESIGN.md §12–§13) flow-sensitively: every path from a batch
// acquisition — a call returning *ColumnBatch (ScanColumns hand-offs
// arrive as callback parameters), a Slice view, a pool get — must reach
// exactly one Release, directly, deferred, or by handing ownership on
// (a consuming callee, a composite literal bound for another stage, a
// return). No identifier may be used after the statement that released
// it, and a batch must not be stored outside the scope responsible for
// releasing it.
//
// The analysis runs on the cfg package's control-flow graphs and is
// interprocedural through FuncFact summaries: each function with
// *ColumnBatch parameters exports whether it borrows or consumes them,
// whether it returns an owned batch, and which of its func-typed
// parameters receive batch ownership when called. Facts flow from a
// package to its importers, so a study-side function literal handed to
// segstore's ScanColumns knows it owns its batch parameter.
//
// Known approximations (DESIGN.md §13): ownership threaded through
// struct fields, maps, slices, or channels is invisible after the
// hand-off (the leak-check runtime twin covers those paths); a batch
// wrapped in a composite literal is treated as handed off even if the
// wrapper never reaches a consumer; conditional-transfer sites (a
// failed Stream.Send returns ownership to the sender) need an
// //edgelint:allow batchlife directive with a reason — the only
// exemption mechanism.
package batchlife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// Analyzer is the batchlife check.
var Analyzer = &analysis.Analyzer{
	Name: "batchlife",
	Doc: `enforce the pooled ColumnBatch ownership protocol on every control-flow path

Flags batches that can leak (a path from acquisition to return without a
Release or hand-off), double releases, uses after release or after
ownership hand-off, owned batches overwritten while live, and batches
escaping into fields or globals. Exports per-function borrow/consume
summaries so the check crosses package boundaries.`,
	Requires:  []*analysis.Analyzer{cfg.Analyzer},
	FactTypes: []analysis.Fact{(*FuncFact)(nil)},
	Run:       run,
}

const (
	// bits of a tracked variable's may-state: the set of conditions the
	// variable can be in on some path reaching the current point.
	stOwned    uint8 = 1 << iota // holds a batch this scope must release
	stParam                      // live borrowed parameter (callers own it)
	stReleased                   // released on some path
	stHanded                     // ownership handed off on some path
)

type varState struct {
	bits uint8
	// deferred is a must-bit: every path to here registered a deferred
	// release (defer x.Release()), which discharges the obligation at
	// exits.
	deferred bool
	// view marks Slice results: they must not escape the scope that
	// releases their parent.
	view bool
	// acq is where the obligation was created, for diagnostics.
	acq token.Pos
}

type state map[*types.Var]varState

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge unions v into s[k]; reports whether s changed.
func (s state) merge(k *types.Var, v varState) bool {
	old, ok := s[k]
	if !ok {
		s[k] = v
		return true
	}
	nb := old.bits | v.bits
	nd := old.deferred && v.deferred
	nv := old.view || v.view
	na := old.acq
	if na == token.NoPos {
		na = v.acq
	}
	if nb == old.bits && nd == old.deferred && nv == old.view && na == old.acq {
		return false
	}
	s[k] = varState{bits: nb, deferred: nd, view: nv, acq: na}
	return true
}

func run(pass *analysis.Pass) (any, error) {
	if !packageUsesBatches(pass) {
		return nil, nil
	}
	graphs := pass.ResultOf[cfg.Analyzer].(*cfg.Graphs)
	a := &checker{
		pass:     pass,
		graphs:   graphs,
		facts:    map[*types.Func]*FuncFact{},
		litOwned: map[*ast.FuncLit]map[int]bool{},
		reported: map[string]bool{},
	}
	a.collectUnits()

	// Package-local fixpoint: facts of mutually-calling functions (and
	// the callback-ownership of literals at their call sites) stabilize
	// in a few rounds; diagnostics are only emitted on the final pass.
	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		if !a.analyzeAll(false) {
			break
		}
	}
	a.analyzeAll(true)

	for fn, fact := range a.facts {
		if !fact.trivial() {
			pass.ExportObjectFact(fn, fact)
		}
	}
	return nil, nil
}

// packageUsesBatches gates the whole analysis: only packages that
// define or import a segstore-shaped ColumnBatch pay for the dataflow.
func packageUsesBatches(pass *analysis.Pass) bool {
	if isSegstorePkg(pass.Pkg) {
		return true
	}
	for _, imp := range pass.Pkg.Imports() {
		if isSegstorePkg(imp) {
			return true
		}
	}
	return false
}

func isSegstorePkg(p *types.Package) bool {
	if p == nil {
		return false
	}
	path := p.Path()
	if path != "segstore" && !strings.HasSuffix(path, "/segstore") {
		return false
	}
	return p.Scope().Lookup("ColumnBatch") != nil
}

// isBatchPtr reports whether t is *segstore.ColumnBatch (any package
// whose path ends in segstore, so fixture modules participate).
func isBatchPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "ColumnBatch" && isSegstorePkg(obj.Pkg())
}

// unit is one function body under analysis: a declaration (with its
// types.Func, so facts attach) or a literal (whose owned parameters
// come from callback facts at its call sites).
type unit struct {
	node ast.Node
	body *ast.BlockStmt
	fn   *types.Func // nil for literals
	lit  *ast.FuncLit
	sig  *types.Signature
}

type checker struct {
	pass   *analysis.Pass
	graphs *cfg.Graphs
	units  []*unit

	// facts are this package's derived summaries (superset of what gets
	// exported: trivial facts stay local).
	facts map[*types.Func]*FuncFact

	// litOwned[lit][i] means literal lit's i-th parameter receives batch
	// ownership — discovered at call sites during analysis, consumed
	// when the literal itself is analyzed (hence the fixpoint).
	litOwned map[*ast.FuncLit]map[int]bool

	// reported dedupes diagnostics across fixpoint rounds and loop
	// revisits.
	reported map[string]bool

	reporting bool
	changed   bool
}

func (c *checker) collectUnits() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				obj, _ := c.pass.TypesInfo.Defs[fn.Name].(*types.Func)
				if obj == nil {
					return true
				}
				sig := obj.Type().(*types.Signature)
				// ColumnBatch's own methods are the trusted kernel: they
				// manipulate reference counts the protocol abstracts over.
				if recv := sig.Recv(); recv != nil && isBatchRecv(recv.Type()) {
					return true
				}
				c.units = append(c.units, &unit{node: fn, body: fn.Body, fn: obj, sig: sig})
			case *ast.FuncLit:
				sig, _ := c.pass.TypesInfo.Types[fn].Type.(*types.Signature)
				if sig == nil {
					return true
				}
				c.units = append(c.units, &unit{node: fn, body: fn.Body, lit: fn, sig: sig})
			}
			return true
		})
	}
}

func isBatchRecv(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "ColumnBatch" && isSegstorePkg(named.Obj().Pkg())
}

// analyzeAll runs the dataflow over every unit; returns whether any
// fact or literal-ownership changed (fixpoint continuation).
func (c *checker) analyzeAll(report bool) bool {
	c.reporting = report
	c.changed = false
	for _, u := range c.units {
		c.analyzeUnit(u)
	}
	return c.changed
}

// funcUnit is the per-unit dataflow context.
type funcUnit struct {
	c *checker
	u *unit
	g *cfg.Graph
	// tracked maps every *ColumnBatch variable defined in this function
	// (params and locals) to true; captured variables of enclosing
	// functions are not tracked here.
	tracked map[*types.Var]bool
	// params maps batch parameter vars to their index in the signature.
	params map[*types.Var]int
	// errLink maps an error variable to the batch variable acquired in
	// the same tuple assignment (b, err := acquire()), so branching on
	// err refines b's state.
	errLink map[*types.Var]*types.Var

	// per-exit observations for fact derivation.
	paramReleasedSome map[*types.Var]bool
	paramLiveSome     map[*types.Var]bool
	returnsOwned      bool
	callbacks         map[CallbackFact]bool
}

func (c *checker) analyzeUnit(u *unit) {
	g := c.graphs.FuncOf(u.node)
	if g == nil {
		return
	}
	fu := &funcUnit{
		c: c, u: u, g: g,
		tracked:           map[*types.Var]bool{},
		params:            map[*types.Var]int{},
		errLink:           map[*types.Var]*types.Var{},
		paramReleasedSome: map[*types.Var]bool{},
		paramLiveSome:     map[*types.Var]bool{},
		callbacks:         map[CallbackFact]bool{},
	}

	entry := state{}
	// Parameters: batch params start as borrowed (callers own them)
	// unless a callback fact at this literal's call site says ownership
	// arrives with the call.
	owned := map[int]bool{}
	if u.lit != nil {
		owned = c.litOwned[u.lit]
	}
	for i := 0; i < u.sig.Params().Len(); i++ {
		p := u.sig.Params().At(i)
		if !isBatchPtr(p.Type()) {
			continue
		}
		fu.tracked[p] = true
		fu.params[p] = i
		if owned[i] {
			entry[p] = varState{bits: stOwned, acq: p.Pos()}
		} else {
			entry[p] = varState{bits: stParam, acq: p.Pos()}
		}
	}
	// Pre-register every locally defined batch variable so uses resolve.
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			return false // nested literals are their own units
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && isBatchPtr(v.Type()) {
				fu.tracked[v] = true
			}
		}
		return true
	})

	// Worklist to fixpoint (no reporting), then one reporting sweep.
	in := map[*cfg.Block]state{g.Entry: entry}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := in[b].clone()
		silent := &sink{}
		for _, n := range b.Nodes {
			fu.transfer(n, out, silent)
		}
		for i, succ := range b.Succs {
			edge := out
			if r := fu.refine(b, i, out); r != nil {
				edge = r
			}
			dst, ok := in[succ]
			if !ok {
				dst = state{}
				in[succ] = dst
			}
			changed := false
			for k, v := range edge {
				if dst.merge(k, v) {
					changed = true
				}
			}
			if changed || !ok {
				work = append(work, succ)
			}
		}
	}

	// Reporting sweep + exit checks, from the stabilized in-states.
	rep := &sink{fu: fu}
	for _, b := range c.graphs.FuncOf(u.node).Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		out := st.clone()
		for _, n := range b.Nodes {
			fu.transfer(n, out, rep)
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				fu.checkExit(out, ret.Pos(), rep)
			}
		}
		// Fall-off-the-end path: a block that edges to Exit without a
		// return statement.
		for _, succ := range b.Succs {
			if succ == c.graphs.FuncOf(u.node).Exit && !endsWithReturn(b) {
				fu.checkExit(out, u.body.Rbrace, rep)
			}
		}
	}

	fu.deriveFact(rep)
}

func endsWithReturn(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	_, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

// sink collects or discards diagnostics; during the silent fixpoint
// rounds fu is nil and everything is dropped.
type sink struct {
	fu *funcUnit
}

func (s *sink) reportf(pos token.Pos, format string, args ...any) {
	if s.fu == nil || !s.fu.c.reporting {
		return
	}
	key := s.fu.c.pass.Fset.Position(pos).String() + ":" + format
	if s.fu.c.reported[key] {
		return
	}
	s.fu.c.reported[key] = true
	s.fu.c.pass.Reportf(pos, format, args...)
}

// checkExit demands every tracked variable's obligation is discharged
// on a path reaching a normal function exit.
func (fu *funcUnit) checkExit(st state, pos token.Pos, rep *sink) {
	for v, vs := range st {
		if vs.bits&stOwned != 0 && !vs.deferred {
			rep.reportf(pos, "column batch %s may reach this exit without being released (acquired at %s)",
				v.Name(), fu.c.pass.Fset.Position(vs.acq))
		}
		if _, isParam := fu.params[v]; isParam {
			if vs.bits&stParam != 0 && !vs.deferred {
				fu.paramLiveSome[v] = true
			}
			// A parameter handed to a consuming callee was consumed
			// transitively; deferred releases consume at exit.
			if vs.bits&(stReleased|stHanded) != 0 || vs.deferred {
				fu.paramReleasedSome[v] = true
			}
		}
	}
}

// deriveFact computes this declaration's summary from the exit
// observations and records whether it changed (fixpoint driver).
func (fu *funcUnit) deriveFact(rep *sink) {
	if fu.u.fn == nil {
		return
	}
	sig := fu.u.sig
	fact := &FuncFact{ReturnsOwned: fu.returnsOwned}
	if n := sig.Params().Len(); n > 0 {
		fact.Params = make([]ParamMode, n)
	}
	for v, i := range fu.params {
		released := fu.paramReleasedSome[v]
		live := fu.paramLiveSome[v]
		switch {
		case released && live:
			rep.reportf(fu.u.node.Pos(), "%s releases its *ColumnBatch parameter %s on some paths but not others",
				fu.u.fn.Name(), v.Name())
			fact.Params[i] = ParamConsumes
		case released:
			fact.Params[i] = ParamConsumes
		default:
			fact.Params[i] = ParamBorrows
		}
	}
	for cb := range fu.callbacks {
		fact.Callbacks = append(fact.Callbacks, cb)
	}
	sortCallbacks(fact.Callbacks)
	if prev := fu.c.facts[fu.u.fn]; !fact.equal(prev) {
		fu.c.facts[fu.u.fn] = fact
		fu.c.changed = true
	}
}

func sortCallbacks(cbs []CallbackFact) {
	for i := 1; i < len(cbs); i++ {
		for j := i; j > 0 && (cbs[j].Param < cbs[j-1].Param || (cbs[j].Param == cbs[j-1].Param && cbs[j].Arg < cbs[j-1].Arg)); j-- {
			cbs[j], cbs[j-1] = cbs[j-1], cbs[j]
		}
	}
}

// refine adjusts the state along a branch edge when the block's leaf
// condition is a nil comparison of a tracked batch, or of an error
// variable tuple-linked to one (b, err := acquire(); if err != nil
// { ... } — the error branch carries no batch).
func (fu *funcUnit) refine(b *cfg.Block, succIdx int, st state) state {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return nil
	}
	cond, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok {
		return nil
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	var operand ast.Expr
	if isNilIdent(fu.c.pass, y) {
		operand = x
	} else if isNilIdent(fu.c.pass, x) {
		operand = y
	} else {
		return nil
	}
	id, ok := operand.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, _ := fu.c.pass.TypesInfo.Uses[id].(*types.Var)
	if obj == nil {
		if d, okd := fu.c.pass.TypesInfo.Defs[id].(*types.Var); okd {
			obj = d
		}
	}
	if obj == nil {
		return nil
	}
	var batch *types.Var
	if fu.tracked[obj] {
		batch = obj
	} else if linked, okl := fu.errLink[obj]; okl {
		batch = linked
	} else {
		return nil
	}
	// Which edge is "the value is nil / the call failed"?
	nilEdge := 0 // Succs[0] is the true edge
	if bin.Op == token.NEQ {
		nilEdge = 1
	}
	onNil := succIdx == nilEdge
	// err != nil refining b: err's nil edge is where b IS owned.
	if batch != obj {
		onNil = !onNil
	}
	if !onNil {
		return nil
	}
	r := st.clone()
	vs := r[batch]
	vs.bits &^= stOwned | stParam
	r[batch] = vs
	return r
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}
