package batchlife_test

import (
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/batchlife"
	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

// The consumer fixture covers every diagnostic: leaks on error paths,
// use after release, double release, escaping views, overwrites,
// double defers, and the interprocedural cases riding on imported
// facts (Read returns owned, Drain consumes, ScanColumns's emit owns
// its argument).
func TestBatchUserFixture(t *testing.T) {
	analysistest.Run(t, batchlife.Analyzer, "batchuser")
}

// The miniature segstore fixture checks the exported summaries
// themselves via want-fact annotations.
func TestMiniSegstoreFacts(t *testing.T) {
	analysistest.Run(t, batchlife.Analyzer, "segstore")
}

// TestAllowDirective proves the only exemption mechanism end to end:
// in testdata/allowmod one violation carries a reasoned
// //edgelint:allow batchlife directive and one does not — the suite
// must keep exactly the bare one and not flag the directive as unused.
func TestAllowDirective(t *testing.T) {
	ld, err := load.NewLoader("testdata/allowmod")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := suite.Run(pkgs, []*analysis.Analyzer{batchlife.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		var all []string
		for _, f := range findings {
			all = append(all, f.String())
		}
		t.Fatalf("got %d findings, want exactly the bare leak:\n%s", len(findings), strings.Join(all, "\n"))
	}
	f := findings[0]
	if !strings.Contains(f.Message, "without being released") {
		t.Errorf("surviving finding is not the leak: %s", f)
	}
	if !strings.HasSuffix(f.Pos.Filename, "use.go") {
		t.Errorf("finding in unexpected file: %s", f)
	}
}
