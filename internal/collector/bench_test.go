package collector

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/world"
)

// benchSamples generates one small world's worth of realistic samples
// for the ingest benchmarks.
func benchSamples(b *testing.B) []sample.Sample {
	b.Helper()
	w := world.New(world.Config{Seed: 7, Groups: 6, Days: 1, SessionsPerGroupWindow: 10})
	out := w.GenerateAll()
	if len(out) == 0 {
		b.Fatal("no samples generated")
	}
	return out
}

// BenchmarkObsOverhead documents the cost of the obs fast path on the
// ingest hot path: the same collector→store pipeline with metrics off
// (nil handles) and on (live registry). EXPERIMENTS.md records the
// measured delta; the acceptance bar is <5% overhead.
func BenchmarkObsOverhead(b *testing.B) {
	samples := benchSamples(b)
	run := func(b *testing.B, reg *obs.Registry) {
		st := agg.NewStore()
		st.Instrument(reg)
		c := New(StoreSink(st))
		c.Instrument(reg)
		// Warm the store so the timed loop measures steady-state ingest,
		// not map/digest growth.
		for _, s := range samples {
			c.Offer(s)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Offer(samples[i%len(samples)])
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewRegistry()) })
}
