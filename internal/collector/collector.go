// Package collector is the ingestion pipeline between the load-balancer
// instrumentation and analysis (§2.2.2, §2.2.4): it receives sampled
// session records, filters client addresses labelled as hosting
// providers or VPN relays (~2% of traffic, which would otherwise
// mislead temporal analysis — §2.2.4 footnote 2), and fans the stream
// out to sinks (dataset writers, aggregation stores).
package collector

import (
	"repro/internal/agg"
	"repro/internal/sample"
)

// Sink consumes accepted samples.
type Sink func(sample.Sample)

// Stats counts the pipeline's activity.
type Stats struct {
	// Received is every sample offered to the collector.
	Received int
	// FilteredHosting counts samples dropped by the hosting/VPN filter.
	FilteredHosting int
	// Accepted = Received − filtered.
	Accepted int
}

// Collector filters and fans out samples.
type Collector struct {
	// KeepHosting disables the hosting-provider filter (the filter is on
	// by default, matching the paper).
	KeepHosting bool
	sinks       []Sink
	stats       Stats
}

// New returns a collector feeding the given sinks.
func New(sinks ...Sink) *Collector {
	return &Collector{sinks: sinks}
}

// AddSink attaches another sink.
func (c *Collector) AddSink(s Sink) { c.sinks = append(c.sinks, s) }

// Offer runs one sample through the pipeline.
func (c *Collector) Offer(s sample.Sample) {
	c.stats.Received++
	if s.HostingProvider && !c.KeepHosting {
		c.stats.FilteredHosting++
		return
	}
	c.stats.Accepted++
	for _, sink := range c.sinks {
		sink(s)
	}
}

// Stats returns the pipeline counters.
func (c *Collector) Stats() Stats { return c.stats }

// StoreSink adapts an aggregation store into a sink.
func StoreSink(st *agg.Store) Sink {
	return func(s sample.Sample) { st.Add(s) }
}

// WriterSink adapts a sample writer into a sink; write errors are
// reported through errf (which may be nil to ignore them).
func WriterSink(w *sample.Writer, errf func(error)) Sink {
	return func(s sample.Sample) {
		if err := w.Write(s); err != nil && errf != nil {
			errf(err)
		}
	}
}
