// Package collector is the ingestion pipeline between the load-balancer
// instrumentation and analysis (§2.2.2, §2.2.4): it receives sampled
// session records, filters client addresses labelled as hosting
// providers or VPN relays (~2% of traffic, which would otherwise
// mislead temporal analysis — §2.2.4 footnote 2), and fans the stream
// out to sinks (dataset writers, aggregation stores).
//
// # Concurrency contract
//
// Offer, Err and Stats are safe for concurrent use: the counters are
// atomics and error poisoning is a compare-and-swap, so a collector
// may terminate several pipeline worker goroutines at once. Two caveats
// define the contract:
//
//   - The sink set is fixed before ingestion: New and AddSink must not
//     race with Offer. Configure, then run.
//   - Offer is only as concurrent as its sinks. StoreSink and
//     WriterSink wrap single-threaded consumers, so concurrent
//     pipelines give each shard its own collector (and store), then
//     combine counts with Stats.Merge and stores with agg's Store.Merge.
//     A collector whose sinks are themselves thread-safe (or that has
//     none, as in the filter-only stage of cmd/edgesim) may be shared
//     outright.
//
// Poisoning under concurrency keeps the sequential semantics per
// goroutine: after a sink returns an error, no goroutine starts a new
// sink fan-out, and samples offered from then on count as dropped.
// Offers already mid-fan-out in other goroutines complete against the
// pre-error sink state, exactly as interleaved sequential offers would.
package collector

import (
	"fmt"
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/segstore"
)

// Sink consumes accepted samples. A non-nil error poisons the
// pipeline: the collector stops offering samples to every sink (a
// half-written dataset must not keep growing behind a failed writer).
type Sink func(sample.Sample) error

// ColumnSink consumes accepted column batches — the row-free
// counterpart of Sink for the segment read path. The batch is only
// valid for the duration of the call (the offerer releases it);
// consumers that retain data must fold it immediately or copy.
type ColumnSink func(*segstore.ColumnBatch) error

// Stats counts the pipeline's activity.
type Stats struct {
	// Received is every sample offered to the collector.
	Received int
	// FilteredHosting counts samples dropped by the hosting/VPN filter.
	FilteredHosting int
	// Accepted = Received − filtered − dropped.
	Accepted int
	// SinkErrors counts sink invocations that returned an error.
	SinkErrors int
	// DroppedAfterError counts samples discarded because a sink had
	// already failed.
	DroppedAfterError int
}

// Merge returns the element-wise sum of s and o — the reduction for
// per-shard collectors. Every sample passes through exactly one shard,
// so the merged stats match what a single sequential collector would
// have counted.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		Received:          s.Received + o.Received,
		FilteredHosting:   s.FilteredHosting + o.FilteredHosting,
		Accepted:          s.Accepted + o.Accepted,
		SinkErrors:        s.SinkErrors + o.SinkErrors,
		DroppedAfterError: s.DroppedAfterError + o.DroppedAfterError,
	}
}

// Collector filters and fans out samples. See the package comment for
// the concurrency contract.
type Collector struct {
	// KeepHosting disables the hosting-provider filter (the filter is on
	// by default, matching the paper). Set before ingestion starts.
	KeepHosting bool
	sinks       []Sink
	colSinks    []ColumnSink

	received atomic.Int64
	filtered atomic.Int64
	accepted atomic.Int64
	sinkErrs atomic.Int64
	dropped  atomic.Int64
	err      atomic.Pointer[error]

	// Pre-resolved obs handles; nil (no-op) until Instrument is called.
	cAccepted *obs.Counter
	cFiltered *obs.Counter
	cSinkErrs *obs.Counter
	cDropped  *obs.Counter
}

// New returns a collector feeding the given sinks.
func New(sinks ...Sink) *Collector {
	return &Collector{sinks: sinks}
}

// AddSink attaches another sink; must not race with Offer.
func (c *Collector) AddSink(s Sink) { c.sinks = append(c.sinks, s) }

// AddColumnSink attaches a column-batch sink; must not race with
// OfferColumns. A run feeds a collector through exactly one currency —
// rows via Offer or batches via OfferColumns — so a collector carries
// whichever sink set matches its path (the stats are shared either
// way).
func (c *Collector) AddColumnSink(s ColumnSink) { c.colSinks = append(c.colSinks, s) }

// Instrument registers the pipeline counters on reg (nil-safe: a nil
// registry leaves the collector uninstrumented). Shard collectors in a
// concurrent pipeline share one registry: the named counters resolve to
// the same atomics, so /metrics shows pipeline-wide totals.
func (c *Collector) Instrument(reg *obs.Registry) {
	c.cAccepted = reg.Counter("collector_accepted_total")
	c.cFiltered = reg.Counter("collector_filtered_hosting_total")
	c.cSinkErrs = reg.Counter("collector_sink_errors_total")
	c.cDropped = reg.Counter("collector_dropped_after_error_total")
	// Every offered sample lands in exactly one of these, so the total
	// is derived at exposition time and costs nothing per sample.
	acc, fil, drop := c.cAccepted, c.cFiltered, c.cDropped
	reg.CounterFunc("collector_offered_total", func() int64 {
		return acc.Value() + fil.Value() + drop.Value()
	})
}

// Offer runs one sample through the pipeline. After the first sink
// error the pipeline is poisoned: subsequent samples are counted as
// dropped and not offered to any sink (see Err). Safe for concurrent
// use when the sinks are (package comment).
func (c *Collector) Offer(s sample.Sample) {
	c.received.Add(1)
	if c.err.Load() != nil {
		c.dropped.Add(1)
		c.cDropped.Inc()
		return
	}
	if s.HostingProvider && !c.KeepHosting {
		c.filtered.Add(1)
		c.cFiltered.Inc()
		return
	}
	c.accepted.Add(1)
	c.cAccepted.Inc()
	for i, sink := range c.sinks {
		if err := sink(s); err != nil {
			c.sinkErrs.Add(1)
			c.cSinkErrs.Inc()
			// Attribute the failure before poisoning: operators debugging a
			// SinkErrors count need to know which sink broke on which
			// sample, and errors.Is/As still see the original cause.
			werr := fmt.Errorf("sink %d: sample %d (group %s, window %d): %w",
				i, s.SessionID, s.Key(), agg.WindowOf(s.Start), err)
			c.err.CompareAndSwap(nil, &werr)
			return
		}
	}
}

// OfferColumns runs one column batch through the pipeline — the
// row-free counterpart of Offer, with the same counter and poisoning
// semantics applied per row: every row counts as received; after a
// sink error whole batches count as dropped; the hosting filter
// compacts the batch in place (mutating it) before any sink sees it,
// so sinks never see hosting rows, exactly as with Offer. The caller
// retains ownership of the batch and releases it afterwards.
func (c *Collector) OfferColumns(b *segstore.ColumnBatch) {
	n := b.Len()
	c.received.Add(int64(n))
	if c.err.Load() != nil {
		c.dropped.Add(int64(n))
		c.cDropped.Add(int64(n))
		return
	}
	if !c.KeepHosting {
		kept := b.Compact(func(i int) bool { return !b.HostingProvider[i] })
		if f := n - kept; f > 0 {
			c.filtered.Add(int64(f))
			c.cFiltered.Add(int64(f))
		}
		n = kept
	}
	if n == 0 {
		return
	}
	c.accepted.Add(int64(n))
	c.cAccepted.Add(int64(n))
	for i, sink := range c.colSinks {
		if err := sink(b); err != nil {
			c.sinkErrs.Add(1)
			c.cSinkErrs.Inc()
			werr := fmt.Errorf("column sink %d: batch of %d (first sample %d, group %s): %w",
				i, n, b.SessionID[0], b.KeyAt(0), err)
			c.err.CompareAndSwap(nil, &werr)
			return
		}
	}
}

// Err returns the first sink error, or nil.
func (c *Collector) Err() error {
	if p := c.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns a snapshot of the pipeline counters.
func (c *Collector) Stats() Stats {
	return Stats{
		Received:          int(c.received.Load()),
		FilteredHosting:   int(c.filtered.Load()),
		Accepted:          int(c.accepted.Load()),
		SinkErrors:        int(c.sinkErrs.Load()),
		DroppedAfterError: int(c.dropped.Load()),
	}
}

// StoreSink adapts an aggregation store into a sink. The store is
// single-threaded: use one per shard collector in concurrent pipelines.
func StoreSink(st *agg.Store) Sink {
	return func(s sample.Sample) error {
		st.Add(s)
		return nil
	}
}

// WriterSink adapts a sample writer into a sink; write errors poison
// the collector (see Offer).
func WriterSink(w *sample.Writer) Sink {
	return func(s sample.Sample) error { return w.Write(s) }
}

// FuncSink adapts an infallible consumer into a sink.
func FuncSink(f func(sample.Sample)) Sink {
	return func(s sample.Sample) error {
		f(s)
		return nil
	}
}

// StoreColumnSink adapts an aggregation store's batch path into a
// column sink. Like StoreSink, the store is single-threaded: one per
// shard collector in concurrent pipelines.
func StoreColumnSink(st *agg.Store) ColumnSink {
	return func(b *segstore.ColumnBatch) error {
		st.AddBatch(b)
		return nil
	}
}

// ColumnFuncSink adapts an infallible batch consumer into a column
// sink.
func ColumnFuncSink(f func(*segstore.ColumnBatch)) ColumnSink {
	return func(b *segstore.ColumnBatch) error {
		f(b)
		return nil
	}
}

// SliceSink appends accepted samples to *dst — the buffer-then-encode
// shape columnar writers need (they see whole segments, not a stream).
func SliceSink(dst *[]sample.Sample) Sink {
	return func(s sample.Sample) error {
		*dst = append(*dst, s)
		return nil
	}
}
