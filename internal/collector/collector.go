// Package collector is the ingestion pipeline between the load-balancer
// instrumentation and analysis (§2.2.2, §2.2.4): it receives sampled
// session records, filters client addresses labelled as hosting
// providers or VPN relays (~2% of traffic, which would otherwise
// mislead temporal analysis — §2.2.4 footnote 2), and fans the stream
// out to sinks (dataset writers, aggregation stores).
package collector

import (
	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/sample"
)

// Sink consumes accepted samples. A non-nil error poisons the
// pipeline: the collector stops offering samples to every sink (a
// half-written dataset must not keep growing behind a failed writer).
type Sink func(sample.Sample) error

// Stats counts the pipeline's activity.
type Stats struct {
	// Received is every sample offered to the collector.
	Received int
	// FilteredHosting counts samples dropped by the hosting/VPN filter.
	FilteredHosting int
	// Accepted = Received − filtered − dropped.
	Accepted int
	// SinkErrors counts sink invocations that returned an error.
	SinkErrors int
	// DroppedAfterError counts samples discarded because a sink had
	// already failed.
	DroppedAfterError int
}

// Collector filters and fans out samples.
type Collector struct {
	// KeepHosting disables the hosting-provider filter (the filter is on
	// by default, matching the paper).
	KeepHosting bool
	sinks       []Sink
	stats       Stats
	err         error

	// Pre-resolved obs handles; nil (no-op) until Instrument is called.
	cAccepted *obs.Counter
	cFiltered *obs.Counter
	cSinkErrs *obs.Counter
	cDropped  *obs.Counter
}

// New returns a collector feeding the given sinks.
func New(sinks ...Sink) *Collector {
	return &Collector{sinks: sinks}
}

// AddSink attaches another sink.
func (c *Collector) AddSink(s Sink) { c.sinks = append(c.sinks, s) }

// Instrument registers the pipeline counters on reg (nil-safe: a nil
// registry leaves the collector uninstrumented).
func (c *Collector) Instrument(reg *obs.Registry) {
	c.cAccepted = reg.Counter("collector_accepted_total")
	c.cFiltered = reg.Counter("collector_filtered_hosting_total")
	c.cSinkErrs = reg.Counter("collector_sink_errors_total")
	c.cDropped = reg.Counter("collector_dropped_after_error_total")
	// Every offered sample lands in exactly one of these, so the total
	// is derived at exposition time and costs nothing per sample.
	acc, fil, drop := c.cAccepted, c.cFiltered, c.cDropped
	reg.CounterFunc("collector_offered_total", func() int64 {
		return acc.Value() + fil.Value() + drop.Value()
	})
}

// Offer runs one sample through the pipeline. After the first sink
// error the pipeline is poisoned: subsequent samples are counted as
// dropped and not offered to any sink (see Err).
func (c *Collector) Offer(s sample.Sample) {
	c.stats.Received++
	if c.err != nil {
		c.stats.DroppedAfterError++
		c.cDropped.Inc()
		return
	}
	if s.HostingProvider && !c.KeepHosting {
		c.stats.FilteredHosting++
		c.cFiltered.Inc()
		return
	}
	c.stats.Accepted++
	c.cAccepted.Inc()
	for _, sink := range c.sinks {
		if err := sink(s); err != nil {
			c.stats.SinkErrors++
			c.cSinkErrs.Inc()
			c.err = err
			return
		}
	}
}

// Err returns the first sink error, or nil.
func (c *Collector) Err() error { return c.err }

// Stats returns the pipeline counters.
func (c *Collector) Stats() Stats { return c.stats }

// StoreSink adapts an aggregation store into a sink.
func StoreSink(st *agg.Store) Sink {
	return func(s sample.Sample) error {
		st.Add(s)
		return nil
	}
}

// WriterSink adapts a sample writer into a sink; write errors poison
// the collector (see Offer).
func WriterSink(w *sample.Writer) Sink {
	return func(s sample.Sample) error { return w.Write(s) }
}

// FuncSink adapts an infallible consumer into a sink.
func FuncSink(f func(sample.Sample)) Sink {
	return func(s sample.Sample) error {
		f(s)
		return nil
	}
}
