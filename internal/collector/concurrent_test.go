package collector

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sample"
)

// Concurrent offers against one shared collector (thread-safe sink)
// must count exactly, with the hosting filter applied per sample. Run
// under -race this is the package-contract check for the sharded
// pipeline's filter stage.
func TestOfferConcurrent(t *testing.T) {
	var delivered atomic.Int64
	c := New(func(sample.Sample) error {
		delivered.Add(1)
		return nil
	})
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Offer(sample.Sample{HostingProvider: i%10 == g})
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	wantFiltered := goroutines * perG / 10
	if st.Received != goroutines*perG {
		t.Errorf("Received = %d, want %d", st.Received, goroutines*perG)
	}
	if st.FilteredHosting != wantFiltered {
		t.Errorf("FilteredHosting = %d, want %d", st.FilteredHosting, wantFiltered)
	}
	if st.Accepted != goroutines*perG-wantFiltered {
		t.Errorf("Accepted = %d, want %d", st.Accepted, goroutines*perG-wantFiltered)
	}
	if int64(st.Accepted) != delivered.Load() {
		t.Errorf("sink saw %d samples, stats claim %d", delivered.Load(), st.Accepted)
	}
}

// Concurrent poisoning: once any goroutine's sink errors, every later
// offer must drop, and the books must balance across the transition.
func TestOfferConcurrentPoisoning(t *testing.T) {
	boom := errors.New("sink failed")
	var n atomic.Int64
	c := New(func(sample.Sample) error {
		if n.Add(1) == 1000 {
			return boom
		}
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Offer(sample.Sample{})
			}
		}()
	}
	wg.Wait()
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("Err = %v, want %v", c.Err(), boom)
	}
	st := c.Stats()
	if st.Received != 16000 {
		t.Errorf("Received = %d, want 16000", st.Received)
	}
	if st.SinkErrors != 1 {
		t.Errorf("SinkErrors = %d, want 1", st.SinkErrors)
	}
	if st.DroppedAfterError == 0 {
		t.Error("no samples recorded as dropped after the error")
	}
	if st.Accepted+st.DroppedAfterError != st.Received {
		t.Errorf("accepted %d + dropped %d != received %d", st.Accepted, st.DroppedAfterError, st.Received)
	}
}

// Stats.Merge is the per-shard reduction; the sum of disjoint shard
// stats must match one collector seeing the union.
func TestStatsMerge(t *testing.T) {
	a := Stats{Received: 10, FilteredHosting: 1, Accepted: 9}
	b := Stats{Received: 5, FilteredHosting: 2, Accepted: 2, SinkErrors: 1, DroppedAfterError: 1}
	got := a.Merge(b)
	want := Stats{Received: 15, FilteredHosting: 3, Accepted: 11, SinkErrors: 1, DroppedAfterError: 1}
	if got != want {
		t.Errorf("Merge = %+v, want %+v", got, want)
	}
}
