package collector

import (
	"bytes"
	"testing"

	"repro/internal/agg"
	"repro/internal/sample"
)

func TestFiltersHosting(t *testing.T) {
	var got []sample.Sample
	c := New(func(s sample.Sample) { got = append(got, s) })
	c.Offer(sample.Sample{SessionID: 1})
	c.Offer(sample.Sample{SessionID: 2, HostingProvider: true})
	c.Offer(sample.Sample{SessionID: 3})
	if len(got) != 2 {
		t.Fatalf("accepted %d samples, want 2", len(got))
	}
	st := c.Stats()
	if st.Received != 3 || st.FilteredHosting != 1 || st.Accepted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestKeepHosting(t *testing.T) {
	var got []sample.Sample
	c := New(func(s sample.Sample) { got = append(got, s) })
	c.KeepHosting = true
	c.Offer(sample.Sample{SessionID: 1, HostingProvider: true})
	if len(got) != 1 {
		t.Error("KeepHosting did not disable the filter")
	}
}

func TestFanOut(t *testing.T) {
	a, b := 0, 0
	c := New(func(sample.Sample) { a++ })
	c.AddSink(func(sample.Sample) { b++ })
	c.Offer(sample.Sample{})
	c.Offer(sample.Sample{})
	if a != 2 || b != 2 {
		t.Errorf("fan-out counts a=%d b=%d", a, b)
	}
}

func TestStoreSink(t *testing.T) {
	st := agg.NewStore()
	c := New(StoreSink(st))
	c.Offer(sample.Sample{PoP: "ams", Prefix: "10.0.0.0/24", Country: "DE", Bytes: 10})
	if st.TotalSamples != 1 {
		t.Errorf("store got %d samples", st.TotalSamples)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	w := sample.NewWriter(&buf)
	c := New(WriterSink(w, nil))
	c.Offer(sample.Sample{SessionID: 42})
	out, err := sample.NewReader(&buf).ReadAll()
	if err != nil || len(out) != 1 || out[0].SessionID != 42 {
		t.Errorf("writer sink round trip failed: %v %v", out, err)
	}
}
