package collector

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/sample"
)

func TestFiltersHosting(t *testing.T) {
	var got []sample.Sample
	c := New(FuncSink(func(s sample.Sample) { got = append(got, s) }))
	c.Offer(sample.Sample{SessionID: 1})
	c.Offer(sample.Sample{SessionID: 2, HostingProvider: true})
	c.Offer(sample.Sample{SessionID: 3})
	if len(got) != 2 {
		t.Fatalf("accepted %d samples, want 2", len(got))
	}
	st := c.Stats()
	if st.Received != 3 || st.FilteredHosting != 1 || st.Accepted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestKeepHosting(t *testing.T) {
	var got []sample.Sample
	c := New(FuncSink(func(s sample.Sample) { got = append(got, s) }))
	c.KeepHosting = true
	c.Offer(sample.Sample{SessionID: 1, HostingProvider: true})
	if len(got) != 1 {
		t.Error("KeepHosting did not disable the filter")
	}
}

func TestFanOut(t *testing.T) {
	a, b := 0, 0
	c := New(FuncSink(func(sample.Sample) { a++ }))
	c.AddSink(FuncSink(func(sample.Sample) { b++ }))
	c.Offer(sample.Sample{})
	c.Offer(sample.Sample{})
	if a != 2 || b != 2 {
		t.Errorf("fan-out counts a=%d b=%d", a, b)
	}
}

func TestStoreSink(t *testing.T) {
	st := agg.NewStore()
	c := New(StoreSink(st))
	c.Offer(sample.Sample{PoP: "ams", Prefix: "10.0.0.0/24", Country: "DE", Bytes: 10})
	if st.TotalSamples != 1 {
		t.Errorf("store got %d samples", st.TotalSamples)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	w := sample.NewWriter(&buf)
	c := New(WriterSink(w))
	c.Offer(sample.Sample{SessionID: 42})
	out, err := sample.NewReader(&buf).ReadAll()
	if err != nil || len(out) != 1 || out[0].SessionID != 42 {
		t.Errorf("writer sink round trip failed: %v %v", out, err)
	}
}

// TestSinkErrorPoisonsPipeline checks the first-error semantics: after
// a sink fails, no sink sees further samples, the error is surfaced via
// Err, and drops are accounted in Stats and the obs counters.
func TestSinkErrorPoisonsPipeline(t *testing.T) {
	boom := errors.New("disk full")
	calls, after := 0, 0
	c := New(
		func(sample.Sample) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		},
		FuncSink(func(sample.Sample) { after++ }),
	)
	reg := obs.NewRegistry()
	c.Instrument(reg)

	for i := 0; i < 5; i++ {
		c.Offer(sample.Sample{SessionID: uint64(i)})
	}
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", c.Err(), boom)
	}
	if calls != 2 {
		t.Errorf("failed sink saw %d samples after error, want 2", calls)
	}
	// The second sink saw only the sample before the failure; the
	// failing offer stopped mid-fan-out and later offers were dropped.
	if after != 1 {
		t.Errorf("downstream sink saw %d samples, want 1", after)
	}
	st := c.Stats()
	if st.Received != 5 || st.SinkErrors != 1 || st.DroppedAfterError != 3 {
		t.Errorf("stats = %+v", st)
	}
	if got := reg.Counter("collector_sink_errors_total").Value(); got != 1 {
		t.Errorf("sink error counter = %d, want 1", got)
	}
	if got := reg.Counter("collector_dropped_after_error_total").Value(); got != 3 {
		t.Errorf("dropped counter = %d, want 3", got)
	}
}

// TestWriterSinkErrorStopsWrites drives the poisoning end to end
// through a failing writer.
func TestWriterSinkErrorStopsWrites(t *testing.T) {
	fw := &failAfter{n: 2}
	w := sample.NewWriter(fw)
	c := New(WriterSink(w))
	for i := 0; i < 10; i++ {
		c.Offer(sample.Sample{SessionID: uint64(i)})
	}
	if c.Err() == nil {
		t.Fatal("expected a write error to surface")
	}
	if fw.writes > 3 {
		t.Errorf("writer saw %d writes after failing, want no more than 3", fw.writes)
	}
}

type failAfter struct {
	n      int
	writes int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.n {
		return 0, errors.New("write failed")
	}
	return len(p), nil
}

// TestSinkErrorAttribution checks the error-context satellite: a sink
// failure must carry which sink, sample, group, and window broke, while
// errors.Is still reaches the original cause.
func TestSinkErrorAttribution(t *testing.T) {
	boom := errors.New("disk full")
	c := New(
		FuncSink(func(sample.Sample) {}),
		func(sample.Sample) error { return boom },
	)
	s := sample.Sample{
		SessionID: 9001,
		PoP:       "fra",
		Prefix:    "10.1.0.0/24",
		Country:   "DE",
		Start:     3 * agg.WindowDuration,
	}
	c.Offer(s)
	err := c.Err()
	if !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, does not wrap %v", err, boom)
	}
	msg := err.Error()
	for _, want := range []string{"sink 1", "sample 9001", "fra/10.1.0.0/24/DE", "window 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Err() = %q, missing %q", msg, want)
		}
	}
}
