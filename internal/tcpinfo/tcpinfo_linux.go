//go:build linux

// Package tcpinfo reads the Linux kernel's TCP_INFO socket state — the
// same state the production instrumentation captures at prescribed
// points (§2.2.2): smoothed and minimum RTT, the congestion window at
// the moment of a write (Wnic), bytes acknowledged, and retransmission
// counters. It backs the live load-balancer demonstration (package lb),
// where the methodology runs against real sockets instead of the
// simulator.
package tcpinfo

import (
	"fmt"
	"net"
	"syscall"
	"time"
	"unsafe"
)

// linuxTCPInfo mirrors the prefix of struct tcp_info from linux/tcp.h
// through tcpi_delivery_rate. Fields beyond what Info exposes are
// retained for offset correctness.
type linuxTCPInfo struct {
	State         uint8
	CaState       uint8
	Retransmits   uint8
	Probes        uint8
	Backoff       uint8
	Options       uint8
	WscaleFlags   uint8
	DeliveryFlags uint8

	Rto     uint32
	Ato     uint32
	SndMss  uint32
	RcvMss  uint32
	Unacked uint32
	Sacked  uint32
	Lost    uint32
	Retrans uint32
	Fackets uint32

	LastDataSent uint32
	LastAckSent  uint32
	LastDataRecv uint32
	LastAckRecv  uint32

	Pmtu         uint32
	RcvSsthresh  uint32
	Rtt          uint32
	Rttvar       uint32
	SndSsthresh  uint32
	SndCwnd      uint32
	Advmss       uint32
	Reordering   uint32
	RcvRtt       uint32
	RcvSpace     uint32
	TotalRetrans uint32

	PacingRate    uint64
	MaxPacingRate uint64
	BytesAcked    uint64
	BytesReceived uint64
	SegsOut       uint32
	SegsIn        uint32

	NotsentBytes uint32
	MinRtt       uint32
	DataSegsIn   uint32
	DataSegsOut  uint32

	DeliveryRate uint64
}

// Info is the TCP state the methodology needs.
type Info struct {
	// RTT and RTTVar are the kernel's smoothed estimates.
	RTT    time.Duration
	RTTVar time.Duration
	// MinRTT is the kernel's windowed minimum RTT (§3.1's metric).
	MinRTT time.Duration
	// SndCwnd is the congestion window in packets; CwndBytes converts.
	SndCwnd int
	// SndMSS is the sender maximum segment size.
	SndMSS int
	// BytesAcked counts cumulatively acknowledged bytes.
	BytesAcked uint64
	// NotSentBytes is data buffered but not yet handed to the network.
	NotSentBytes uint32
	// TotalRetrans counts retransmitted segments over the connection.
	TotalRetrans uint32
	// DeliveryRate is the kernel's delivery-rate estimate (bytes/sec).
	DeliveryRate uint64
}

// CwndBytes returns the congestion window in bytes — Wnic when sampled
// at the moment a response's first byte is written (§3.2.2).
func (i Info) CwndBytes() int64 { return int64(i.SndCwnd) * int64(i.SndMSS) }

const tcpInfoOpt = 11 // TCP_INFO

// Get reads TCP_INFO from a raw connection.
func Get(rc syscall.RawConn) (Info, error) {
	var info linuxTCPInfo
	var sockErr error
	err := rc.Control(func(fd uintptr) {
		size := uint32(unsafe.Sizeof(info))
		_, _, errno := syscall.Syscall6(
			syscall.SYS_GETSOCKOPT,
			fd,
			uintptr(syscall.IPPROTO_TCP),
			uintptr(tcpInfoOpt),
			uintptr(unsafe.Pointer(&info)),
			uintptr(unsafe.Pointer(&size)),
			0,
		)
		if errno != 0 {
			sockErr = errno
		}
	})
	if err != nil {
		return Info{}, fmt.Errorf("tcpinfo: control: %w", err)
	}
	if sockErr != nil {
		return Info{}, fmt.Errorf("tcpinfo: getsockopt: %w", sockErr)
	}
	return Info{
		RTT:          time.Duration(info.Rtt) * time.Microsecond,
		RTTVar:       time.Duration(info.Rttvar) * time.Microsecond,
		MinRTT:       time.Duration(info.MinRtt) * time.Microsecond,
		SndCwnd:      int(info.SndCwnd),
		SndMSS:       int(info.SndMss),
		BytesAcked:   info.BytesAcked,
		NotSentBytes: info.NotsentBytes,
		TotalRetrans: info.TotalRetrans,
		DeliveryRate: info.DeliveryRate,
	}, nil
}

// FromTCPConn reads TCP_INFO from a *net.TCPConn.
func FromTCPConn(c *net.TCPConn) (Info, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return Info{}, fmt.Errorf("tcpinfo: syscall conn: %w", err)
	}
	return Get(rc)
}
