//go:build !linux

package tcpinfo

import (
	"errors"
	"net"
	"syscall"
	"time"
)

// ErrUnsupported is returned on platforms without TCP_INFO support.
var ErrUnsupported = errors.New("tcpinfo: TCP_INFO is only supported on linux")

// Info is the TCP state the methodology needs; see the linux build.
type Info struct {
	RTT          time.Duration
	RTTVar       time.Duration
	MinRTT       time.Duration
	SndCwnd      int
	SndMSS       int
	BytesAcked   uint64
	NotSentBytes uint32
	TotalRetrans uint32
	DeliveryRate uint64
}

// CwndBytes returns the congestion window in bytes.
func (i Info) CwndBytes() int64 { return int64(i.SndCwnd) * int64(i.SndMSS) }

// Get is unsupported on this platform.
func Get(syscall.RawConn) (Info, error) { return Info{}, ErrUnsupported }

// FromTCPConn is unsupported on this platform.
func FromTCPConn(*net.TCPConn) (Info, error) { return Info{}, ErrUnsupported }
