package faults

import "repro/internal/trace"

// EmitTrace writes the finalized ledger onto the run track as one
// KMark per counter (stage trace.CoverageStage) — the summary the
// edgetrace cause attribution reconciles per-group KLoss events
// against. Call after Finalize, from a goroutine that owns b. Nil-safe
// on both receiver and buffer.
func (c *Coverage) EmitTrace(b *trace.Buf) {
	if c == nil || b == nil {
		return
	}
	marks := []struct {
		detail string
		value  int64
	}{
		{trace.MarkLostPrefix + trace.LossOutage, int64(c.SamplesLostOutage)},
		{trace.MarkLostPrefix + trace.LossTruncated, int64(c.SamplesLostTruncated)},
		{trace.MarkLostPrefix + trace.LossDropped, int64(c.SamplesLostDropped)},
		{trace.MarkLostPrefix + trace.LossQuarantined, int64(c.SamplesLostQuarantined)},
		{trace.MarkGroupsDropped, int64(c.GroupsDropped)},
		{trace.MarkBatchesTrunc, int64(c.BatchesTruncated)},
		{trace.MarkRetries, int64(c.RetriesSpent)},
		{trace.MarkRecovered, int64(c.TransientRecovered)},
	}
	for i, m := range marks {
		b.Emit(trace.Event{
			Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: uint64(i),
			Kind: trace.KMark, Stage: trace.CoverageStage, Value: m.value, Detail: m.detail,
		})
	}
}

// TracedPolicy returns p with retry attempts recorded as KRetry events
// at the given logical coordinates, chained after any existing OnRetry
// hook. A nil buffer returns p unchanged.
func TracedPolicy(p Policy, b *trace.Buf, track string, phase uint8, win int32, seq uint64, stage string) Policy {
	if b == nil {
		return p
	}
	prev := p.OnRetry
	p.OnRetry = func(attempt int, err error) {
		if prev != nil {
			prev(attempt, err)
		}
		b.Emit(trace.Event{
			Track: track, Phase: phase, Win: win, Seq: seq,
			Kind: trace.KRetry, Stage: stage, Value: int64(attempt),
		})
	}
	return p
}
