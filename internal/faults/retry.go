package faults

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Policy shapes Retry: capped exponential backoff with jitter. The
// zero value retries transient faults up to 4 attempts with a 1ms base
// delay capped at 50ms and ±25% jitter.
type Policy struct {
	// MaxAttempts is the total number of op invocations (first try
	// included). Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 50ms.
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over ±Jitter/2 of its value,
	// drawn from RNG. Default 0.5 (±25%); jitter is skipped when RNG is
	// nil. Jitter affects timing only, never outcomes.
	Jitter float64
	// RNG is the jitter stream. Each concurrent call site must hold its
	// own split (rng.Child/ChildAt); Retry never shares it.
	RNG *rng.RNG
	// Sleep replaces the real clock (tests, virtual time). Nil means a
	// context-aware real sleep.
	Sleep func(time.Duration)
	// Retryable classifies errors; nil means IsTransient.
	Retryable func(error) bool
	// OnRetry observes each retry before its backoff: attempt is the
	// 1-based retry number, err the failure being retried. Used for
	// retry accounting.
	OnRetry func(attempt int, err error)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	if p.Jitter < 0 || p.Jitter >= 2 {
		p.Jitter = 0.5
	}
	if p.Retryable == nil {
		p.Retryable = IsTransient
	}
	return p
}

// delay computes the backoff before the attempt-th retry (1-based).
func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(2, float64(attempt-1))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.RNG != nil && p.Jitter > 0 {
		d *= 1 - p.Jitter/2 + p.Jitter*p.RNG.Float64()
	}
	return time.Duration(d)
}

// Retry runs op, retrying failures the policy classifies as retryable
// with capped exponential backoff until an attempt succeeds, a
// non-retryable error surfaces (returned as-is), the attempt budget is
// exhausted (the last error is returned wrapped with the budget), or
// ctx is cancelled mid-backoff (the cancellation cause is returned,
// wrapping the pending error).
func Retry(ctx context.Context, p Policy, op func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if !p.Retryable(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry budget exhausted after %d attempts: %w", p.MaxAttempts, err)
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if serr := p.sleep(ctx, p.delay(attempt)); serr != nil {
			return fmt.Errorf("%w (retrying %v)", serr, err)
		}
	}
}

// sleep waits d or until ctx is cancelled.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return ctx.Err()
	}
}
