package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rng"
)

// fakeClock collects requested sleeps without sleeping.
type fakeClock struct{ slept []time.Duration }

func (c *fakeClock) sleep(d time.Duration) { c.slept = append(c.slept, d) }

func transientErr() error {
	return &FaultError{Surface: SurfaceSink, Key: "t", Transient: true}
}

func TestRetryRecoversTransient(t *testing.T) {
	clock := &fakeClock{}
	fails := 2
	calls := 0
	retries := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, Sleep: clock.sleep,
		OnRetry: func(int, error) { retries++ },
	}, func() error {
		calls++
		if fails > 0 {
			fails--
			return transientErr()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want recovery", err)
	}
	if calls != 3 || retries != 2 || len(clock.slept) != 2 {
		t.Errorf("calls=%d retries=%d sleeps=%d, want 3/2/2", calls, retries, len(clock.slept))
	}
	// No jitter RNG: backoff is the pure doubling sequence.
	if clock.slept[0] != time.Millisecond || clock.slept[1] != 2*time.Millisecond {
		t.Errorf("backoff = %v, want [1ms 2ms]", clock.slept)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 3, Sleep: clock.sleep}, func() error {
		calls++
		return transientErr()
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want exhaustion after 3", err, calls)
	}
	if !IsTransient(err) {
		t.Error("exhaustion error lost the transient cause (errors.As must still reach it)")
	}
}

func TestRetryReturnsPermanentAsIs(t *testing.T) {
	boom := errors.New("disk on fire")
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 5, Sleep: func(time.Duration) { t.Fatal("slept on a permanent error") }}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the original error after 1 call", err, calls)
	}
}

func TestRetryBackoffCapsAtMaxDelay(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	_ = Retry(context.Background(), Policy{
		MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond, Sleep: clock.sleep,
	}, func() error { calls++; return transientErr() })
	if len(clock.slept) != 7 {
		t.Fatalf("slept %d times, want 7", len(clock.slept))
	}
	for i, d := range clock.slept {
		if d > 25*time.Millisecond {
			t.Errorf("sleep %d = %v exceeds the 25ms cap", i, d)
		}
	}
	if clock.slept[0] != 10*time.Millisecond || clock.slept[6] != 25*time.Millisecond {
		t.Errorf("backoff = %v", clock.slept)
	}
}

func TestRetryJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{BaseDelay: 8 * time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.5,
		RNG: rng.ChildAt(1, "jitter", 0)}
	q := Policy{BaseDelay: 8 * time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.5,
		RNG: rng.ChildAt(1, "jitter", 0)}
	for i := 0; i < 100; i++ {
		d, e := p.delay(1), q.delay(1)
		if d != e {
			t.Fatal("same RNG lineage produced different jitter")
		}
		if d < 6*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±25%% of 8ms", d)
		}
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("operator interrupt")
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 10, BaseDelay: time.Hour}, func() error {
		calls++
		cancel(boom) // cancelled while the first backoff is pending
		return transientErr()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times after cancellation, want 1", calls)
	}
}

// BenchmarkRetryOverhead measures the recovery layer's cost on the
// no-fault path — the per-sample price every guarded offer pays when
// nothing is injected (see EXPERIMENTS.md).
func BenchmarkRetryOverhead(b *testing.B) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond}
	op := func() error { return nil }
	b.Run("bare-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = op()
		}
	})
	b.Run("retry-wrapped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Retry(context.Background(), p, op)
		}
	})
}
