package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sample"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=9;sink-transient=0.01;sink-streak=3;sink-permanent=0.001;truncate=0.2;truncate-frac=0.25;" +
		"corrupt=0.05;fail-group=2|7;delay=0.1;delay-max=3ms;stage-budget=2s;outage=gru:10-20;retries=5;retry-base=2ms"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.SinkTransientP != 0.01 || p.SinkStreak != 3 || p.SinkPermanentP != 0.001 {
		t.Errorf("sink fields wrong: %+v", p)
	}
	if p.TruncateP != 0.2 || p.TruncateFrac != 0.25 || p.CorruptP != 0.05 {
		t.Errorf("batch fields wrong: %+v", p)
	}
	if len(p.FailGroups) != 2 || p.FailGroups[0] != 2 || p.FailGroups[1] != 7 {
		t.Errorf("FailGroups = %v", p.FailGroups)
	}
	if p.DelayP != 0.1 || p.DelayMax != 3*time.Millisecond || p.StageBudget != 2*time.Second {
		t.Errorf("timing fields wrong: %+v", p)
	}
	if len(p.Outages) != 1 || !p.Outages[0].Covers("gru", 15) || p.Outages[0].Covers("gru", 20) || p.Outages[0].Covers("ams", 15) {
		t.Errorf("outage wrong: %+v", p.Outages)
	}
	if p.RetryAttempts != 5 || p.RetryBase != 2*time.Millisecond {
		t.Errorf("retry fields wrong: %+v", p)
	}
	// Spec → ParsePlan → Spec must be a fixed point: the coverage
	// section prints Spec, and determinism depends on it being canonical.
	again, err := ParsePlan(p.Spec())
	if err != nil {
		t.Fatalf("reparsing %q: %v", p.Spec(), err)
	}
	if got, want := again.Spec(), p.Spec(); got != want {
		t.Errorf("spec not a fixed point:\n got %q\nwant %q", got, want)
	}
}

func TestParsePlanEmptyAndErrors(t *testing.T) {
	for _, s := range []string{"", "  ", "none"} {
		if p, err := ParsePlan(s); p != nil || err != nil {
			t.Errorf("ParsePlan(%q) = %v, %v; want nil, nil", s, p, err)
		}
	}
	bad := []string{
		"sink-transient=1.5",          // probability out of range
		"bogus-key=1",                 // unknown key
		"outage=gru",                  // malformed outage
		"outage=gru:9-3",              // inverted range
		"delay-max=fast",              // bad duration
		"sink-transient",              // missing value
		"stall-shard=0",               // stall without a budget would hang
		"stall-shard=1;stall-for=1ms", // same, explicit duration
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

// Fault decisions must be pure functions of identity: independent of
// call order, repeatable, and differently placed under different seeds.
func TestInjectorDecisionsArePure(t *testing.T) {
	plan := &Plan{Seed: 3, SinkTransientP: 0.2, SinkPermanentP: 0.05, TruncateP: 0.2, CorruptP: 0.1}
	a := NewInjector(plan, 42)
	b := NewInjector(plan, 42)
	samples := make([]sample.Sample, 500)
	for i := range samples {
		samples[i] = sample.Sample{SessionID: uint64(i*977 + 13)}
	}
	// b sees the same identities in reverse order.
	for i := range samples {
		fa := a.SinkFault(samples[i])
		fb := b.SinkFault(samples[len(samples)-1-i])
		fa2 := a.SinkFault(samples[i]) // repeatable on the same injector
		if fa != fa2 {
			t.Fatalf("SinkFault not repeatable for sample %d: %+v vs %+v", i, fa, fa2)
		}
		_ = fb
	}
	for i := range samples {
		if fa, fb := a.SinkFault(samples[i]), b.SinkFault(samples[i]); fa != fb {
			t.Fatalf("SinkFault differs across call orders for sample %d: %+v vs %+v", i, fa, fb)
		}
	}
	for g := 0; g < 200; g++ {
		if fa, fb := a.BatchFault(g), b.BatchFault(g); fa != fb {
			t.Fatalf("BatchFault differs for group %d: %+v vs %+v", g, fa, fb)
		}
	}
	// A different study seed must move the faults.
	c := NewInjector(plan, 43)
	same := 0
	faults := 0
	for i := range samples {
		fa, fc := a.SinkFault(samples[i]), c.SinkFault(samples[i])
		if !fa.None() {
			faults++
			if fa == fc {
				same++
			}
		}
	}
	if faults == 0 {
		t.Fatal("plan injected no sink faults at p=0.25 over 500 samples")
	}
	if same == faults {
		t.Error("changing the study seed did not move any fault position")
	}
}

func TestInjectorNilSafety(t *testing.T) {
	var in *Injector
	if f := in.SinkFault(sample.Sample{}); !f.None() {
		t.Error("nil injector injected a sink fault")
	}
	if f := in.BatchFault(0); f.Kind != BatchOK {
		t.Error("nil injector injected a batch fault")
	}
	if in.Outage("gru", 0) || in.ShardDelay(0, 0) != 0 || in.StageBudget() != 0 {
		t.Error("nil injector injected timing faults")
	}
	in.Instrument(nil)
	in.Recovered()
	in.MarkDegraded()
	if NewInjector(nil, 1) != nil {
		t.Error("NewInjector(nil) != nil")
	}
}

func TestFailGroupsAlwaysFail(t *testing.T) {
	in := NewInjector(&Plan{FailGroups: []int{4}}, 1)
	if f := in.BatchFault(4); f.Kind != BatchFail {
		t.Errorf("fail-group batch fate = %v", f.Kind)
	}
	if f := in.BatchFault(5); f.Kind != BatchOK {
		t.Errorf("clean group fate = %v", f.Kind)
	}
}

func TestCoverageMergeAndFinalize(t *testing.T) {
	a := Coverage{SamplesLostOutage: 1, RetriesSpent: 2, Quarantined: []QuarantinedGroup{{Key: "z", SamplesLost: 3}}}
	b := Coverage{SamplesLostQuarantined: 4, GroupsDropped: 1, TransientRecovered: 5,
		Quarantined: []QuarantinedGroup{{Key: "a", SamplesLost: 1}}}
	a.Merge(&b)
	a.Merge(nil)
	a.Finalize()
	if a.SamplesLost() != 5 || a.RetriesSpent != 2 || a.TransientRecovered != 5 {
		t.Errorf("merged ledger wrong: %+v", a)
	}
	if len(a.Quarantined) != 2 || a.Quarantined[0].Key != "a" || a.Quarantined[1].Key != "z" {
		t.Errorf("finalize did not sort: %+v", a.Quarantined)
	}
	if !a.Degraded() {
		t.Error("lossy ledger reports not degraded")
	}
	clean := Coverage{RetriesSpent: 9, TransientRecovered: 9}
	if clean.Degraded() {
		t.Error("recovered-only ledger reports degraded: retries cost time, not samples")
	}
}

func TestFaultErrorClassification(t *testing.T) {
	tr := &FaultError{Surface: SurfaceSink, Key: "k", Transient: true}
	if !IsTransient(tr) {
		t.Error("transient fault not classified transient")
	}
	if IsTransient(&FaultError{Surface: SurfaceBatch}) || IsTransient(nil) {
		t.Error("permanent/nil classified transient")
	}
	if !strings.Contains(tr.Error(), "transient") || !strings.Contains(tr.Error(), SurfaceSink) {
		t.Errorf("Error() = %q", tr.Error())
	}
}

func TestParsePlanShipKeys(t *testing.T) {
	p, err := ParsePlan("seed=4;ship-drop=0.2;ship-dup=0.1;ship-trunc=0.05;ship-delay=0.3;ship-delay-max=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.ShipDropP != 0.2 || p.ShipDupP != 0.1 || p.ShipTruncP != 0.05 || p.ShipDelayP != 0.3 || p.ShipDelayMax != 5*time.Millisecond {
		t.Errorf("ship fields wrong: %+v", p)
	}
	again, err := ParsePlan(p.Spec())
	if err != nil {
		t.Fatalf("reparsing %q: %v", p.Spec(), err)
	}
	if got, want := again.Spec(), p.Spec(); got != want {
		t.Errorf("ship spec not a fixed point:\n got %q\nwant %q", got, want)
	}
	if _, err := ParsePlan("ship-drop=2"); err == nil {
		t.Error("ship-drop=2 accepted")
	}
}

// Ship decisions are pure functions of (segment, attempt): repeatable,
// independent of call order, with duplicates confined to attempt 0 so
// the injected-dup count does not depend on retry dynamics.
func TestShipFaultDeterminism(t *testing.T) {
	plan := &Plan{Seed: 7, ShipDropP: 0.2, ShipDupP: 0.15, ShipTruncP: 0.1, ShipDelayP: 0.2}
	a := NewInjector(plan, 42)
	b := NewInjector(plan, 42)
	kinds := map[ShipFaultKind]int{}
	for seg := 0; seg < 400; seg++ {
		for att := 0; att < 3; att++ {
			fa, fb := a.ShipFault(seg, att), b.ShipFault(seg, att)
			if fa != fb {
				t.Fatalf("ShipFault(%d,%d) not repeatable: %+v vs %+v", seg, att, fa, fb)
			}
			kinds[fa.Kind]++
			if fa.Kind == ShipDup && att != 0 {
				t.Fatalf("duplicate injected on retry attempt %d", att)
			}
			if fa.Kind == ShipDelay && (fa.Delay < 0 || fa.Delay >= 2*time.Millisecond) {
				t.Fatalf("delay %v outside [0, default max)", fa.Delay)
			}
		}
	}
	// Reverse order must draw identical decisions.
	for seg := 399; seg >= 0; seg-- {
		if got, want := b.ShipFault(seg, 1), a.ShipFault(seg, 1); got != want {
			t.Fatalf("order-dependent decision at seg %d", seg)
		}
	}
	for _, k := range []ShipFaultKind{ShipDrop, ShipDup, ShipTruncate, ShipDelay} {
		if kinds[k] == 0 {
			t.Errorf("kind %v never drawn over 1200 attempts", k)
		}
	}
	if a.ShipFault(1, 20) != a.ShipFault(1, 15) {
		t.Error("attempts beyond 15 do not share attempt 15's decision")
	}
	var nilInj *Injector
	if !nilInj.ShipFault(3, 0).None() {
		t.Error("nil injector injected a ship fault")
	}
	if !NewInjector(&Plan{Seed: 1}, 1).ShipFault(3, 0).None() {
		t.Error("zero ship probabilities injected a fault")
	}
}
