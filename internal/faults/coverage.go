package faults

import "sort"

// QuarantinedGroup records one isolated user group: the unit the
// pipeline withdrew from aggregation instead of poisoning the run.
type QuarantinedGroup struct {
	// Key identifies the group (sample.GroupKey.String() in the study
	// pipeline; "group-N" for edgesim's world-group batches).
	Key string
	// Reason is the fault class that forced the quarantine.
	Reason string
	// SamplesLost counts the group's samples withdrawn or skipped.
	SamplesLost int
}

// Coverage is the graceful-degradation ledger for one run: what was
// lost, where, and what it cost to keep the rest. Feamster &
// Livingood's rule for speed-measurement pipelines — report coverage
// alongside results — is enforced by rendering this next to every
// degraded report, so a reduced sample set is labeled, never silent.
// Counters partition by cause; Merge folds per-shard ledgers with a
// deterministic result (sums commute, the quarantine list is sorted).
type Coverage struct {
	// Spec is the canonical fault-plan spec that produced this run.
	Spec string
	// FailFast records the run's recovery stance.
	FailFast bool

	// SamplesLostOutage counts sessions never generated because their
	// serving PoP was down.
	SamplesLostOutage int
	// SamplesLostTruncated counts samples cut from truncated batches.
	SamplesLostTruncated int
	// SamplesLostDropped counts samples in batches dropped whole
	// (corruption or plan-listed permanent group failure).
	SamplesLostDropped int
	// SamplesLostQuarantined counts samples withdrawn from or refused by
	// quarantined user groups.
	SamplesLostQuarantined int

	// GroupsDropped counts world-group batches dropped before
	// aggregation; BatchesTruncated counts batches that lost a tail.
	GroupsDropped    int
	BatchesTruncated int

	// RetriesSpent counts backoff retries across every surface;
	// TransientRecovered counts faults that retry fully absorbed.
	RetriesSpent       int
	TransientRecovered int

	// Quarantined lists isolated groups, sorted by key.
	Quarantined []QuarantinedGroup
}

// SamplesLost totals losses across causes.
func (c *Coverage) SamplesLost() int {
	return c.SamplesLostOutage + c.SamplesLostTruncated + c.SamplesLostDropped + c.SamplesLostQuarantined
}

// Degraded reports whether the run lost data. Recovered transients
// alone do not degrade a run: retries cost time, not samples.
func (c *Coverage) Degraded() bool {
	return c.SamplesLost() > 0 || c.GroupsDropped > 0 || len(c.Quarantined) > 0
}

// Merge folds o into c — the per-shard ledger reduction. Shards own
// disjoint group-key spaces, so quarantine entries never collide.
func (c *Coverage) Merge(o *Coverage) {
	if o == nil {
		return
	}
	c.SamplesLostOutage += o.SamplesLostOutage
	c.SamplesLostTruncated += o.SamplesLostTruncated
	c.SamplesLostDropped += o.SamplesLostDropped
	c.SamplesLostQuarantined += o.SamplesLostQuarantined
	c.GroupsDropped += o.GroupsDropped
	c.BatchesTruncated += o.BatchesTruncated
	c.RetriesSpent += o.RetriesSpent
	c.TransientRecovered += o.TransientRecovered
	c.Quarantined = append(c.Quarantined, o.Quarantined...)
}

// Finalize sorts the quarantine list so merged ledgers render
// identically regardless of shard count or merge order.
func (c *Coverage) Finalize() {
	sort.Slice(c.Quarantined, func(i, j int) bool { return c.Quarantined[i].Key < c.Quarantined[j].Key })
}
