package faults

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sample"
)

// Injector turns a Plan into per-identity fault decisions. Every
// decision derives a fresh child stream via rng.ChildAt from (mixed
// seed, surface label, identity), consuming no shared generator state —
// so decisions are pure functions, independent of call order, worker
// count, and scheduling. A nil *Injector is valid everywhere and
// injects nothing.
type Injector struct {
	plan Plan
	mix  uint64
	fail map[int]bool

	// Pre-resolved obs handles; nil (no-op) until Instrument is called.
	cInjected  map[string]*obs.Counter
	gDegraded  *obs.Gauge
	cRecovered *obs.Counter
}

// Surface labels used for decisions and metrics.
const (
	SurfaceSink  = "sink"
	SurfaceBatch = "batch"
	SurfaceWrite = "write"
	SurfaceDelay = "delay"
	SurfacePoP   = "pop"
	SurfaceShip  = "ship"
)

// NewInjector binds plan to a study seed. A nil plan yields a nil
// injector (no injection anywhere).
func NewInjector(plan *Plan, studySeed uint64) *Injector {
	if plan == nil {
		return nil
	}
	p := plan.withDefaults()
	fail := make(map[int]bool, len(p.FailGroups))
	for _, g := range p.FailGroups {
		fail[g] = true
	}
	// Mix the plan seed with the study seed (splitmix-style odd
	// constant) so the same plan yields distinct fault positions on
	// distinct worlds while staying reproducible.
	return &Injector{
		plan: p,
		mix:  p.Seed ^ (studySeed * 0x9e3779b97f4a7c15),
		fail: fail,
	}
}

// Plan returns the injector's effective (defaulted) plan; nil-safe.
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	p := in.plan
	return &p
}

// Instrument registers fault metrics on reg: injections per surface,
// recoveries, and the degradation gauge the run's guard raises when
// data is lost. Nil-safe on both receiver and registry.
func (in *Injector) Instrument(reg *obs.Registry) {
	if in == nil {
		return
	}
	in.cInjected = map[string]*obs.Counter{
		SurfaceSink:  reg.Counter(obs.L("faults_injected_total", "surface", SurfaceSink)),
		SurfaceBatch: reg.Counter(obs.L("faults_injected_total", "surface", SurfaceBatch)),
		SurfaceWrite: reg.Counter(obs.L("faults_injected_total", "surface", SurfaceWrite)),
		SurfaceDelay: reg.Counter(obs.L("faults_injected_total", "surface", SurfaceDelay)),
		SurfacePoP:   reg.Counter(obs.L("faults_injected_total", "surface", SurfacePoP)),
		SurfaceShip:  reg.Counter(obs.L("faults_injected_total", "surface", SurfaceShip)),
	}
	in.cRecovered = reg.Counter("faults_transient_recovered_total")
	in.gDegraded = reg.Gauge("faults_degraded")
}

func (in *Injector) inject(surface string) {
	if c := in.cInjected[surface]; c != nil {
		c.Inc()
	}
}

// Recovered records one transient fault fully absorbed by retry.
func (in *Injector) Recovered() {
	if in != nil {
		in.cRecovered.Inc()
	}
}

// MarkDegraded raises the degradation gauge: the run has lost data.
func (in *Injector) MarkDegraded() {
	if in != nil {
		in.gDegraded.Set(1)
	}
}

// SinkFault is one sample's sink-failure decision: Transient
// consecutive failures before success, or Permanent.
type SinkFault struct {
	Transient int
	Permanent bool
}

// None reports a clean decision.
func (f SinkFault) None() bool { return f.Transient == 0 && !f.Permanent }

// SinkFault decides the collector-sink outcome for one sample, keyed by
// its SessionID (stable across sharding and replay).
func (in *Injector) SinkFault(s sample.Sample) SinkFault {
	if in == nil || (in.plan.SinkTransientP == 0 && in.plan.SinkPermanentP == 0) {
		return SinkFault{}
	}
	r := rng.ChildAt(in.mix, SurfaceSink, int(s.SessionID))
	u := r.Float64()
	switch {
	case u < in.plan.SinkPermanentP:
		in.inject(SurfaceSink)
		return SinkFault{Permanent: true}
	case u < in.plan.SinkPermanentP+in.plan.SinkTransientP:
		in.inject(SurfaceSink)
		return SinkFault{Transient: 1 + r.IntN(in.plan.SinkStreak)}
	}
	return SinkFault{}
}

// WriteFault decides the dataset-writer outcome for one group's encoded
// batch (cmd/edgesim's write stage), reusing the sink probabilities at
// batch granularity.
func (in *Injector) WriteFault(group int) SinkFault {
	if in == nil || (in.plan.SinkTransientP == 0 && in.plan.SinkPermanentP == 0) {
		return SinkFault{}
	}
	r := rng.ChildAt(in.mix, SurfaceWrite, group)
	u := r.Float64()
	switch {
	case u < in.plan.SinkPermanentP:
		in.inject(SurfaceWrite)
		return SinkFault{Permanent: true}
	case u < in.plan.SinkPermanentP+in.plan.SinkTransientP:
		in.inject(SurfaceWrite)
		return SinkFault{Transient: 1 + r.IntN(in.plan.SinkStreak)}
	}
	return SinkFault{}
}

// BatchFaultKind classifies a group batch's fate.
type BatchFaultKind int

// Batch fault kinds.
const (
	BatchOK       BatchFaultKind = iota
	BatchTruncate                // lose the batch tail
	BatchCorrupt                 // drop the whole batch
	BatchFail                    // plan-listed permanent group failure
)

// String names the kind for coverage reasons.
func (k BatchFaultKind) String() string {
	switch k {
	case BatchTruncate:
		return "truncated-batch"
	case BatchCorrupt:
		return "corrupt-batch"
	case BatchFail:
		return "permanent-failure"
	}
	return "ok"
}

// BatchFault describes one group batch's injected fate.
type BatchFault struct {
	Kind BatchFaultKind
	// Frac is the tail fraction lost when Kind is BatchTruncate.
	Frac float64
}

// BatchFault decides a group batch's fate, keyed by group index. A
// group draws the same fate every run of the same (plan, study) pair.
func (in *Injector) BatchFault(group int) BatchFault {
	if in == nil {
		return BatchFault{}
	}
	if in.fail[group] {
		in.inject(SurfaceBatch)
		return BatchFault{Kind: BatchFail}
	}
	if in.plan.CorruptP == 0 && in.plan.TruncateP == 0 {
		return BatchFault{}
	}
	r := rng.ChildAt(in.mix, SurfaceBatch, group)
	u := r.Float64()
	switch {
	case u < in.plan.CorruptP:
		in.inject(SurfaceBatch)
		return BatchFault{Kind: BatchCorrupt}
	case u < in.plan.CorruptP+in.plan.TruncateP:
		in.inject(SurfaceBatch)
		return BatchFault{Kind: BatchTruncate, Frac: in.plan.TruncateFrac}
	}
	return BatchFault{}
}

// Outage reports whether pop is down for window win — the world
// generator consults this through World.PoPDown and suppresses the
// window's sessions.
func (in *Injector) Outage(pop string, win int) bool {
	if in == nil || len(in.plan.Outages) == 0 {
		return false
	}
	for _, o := range in.plan.Outages {
		if o.Covers(pop, win) {
			in.inject(SurfacePoP)
			return true
		}
	}
	return false
}

// ShardDelay returns the injected delay for a shard's nth dispatch —
// scheduling chaos that perturbs timing but must not change a single
// output byte. Includes the plan's one-shot shard stall (dispatch 0 of
// StallShard).
func (in *Injector) ShardDelay(shard, n int) time.Duration {
	if in == nil {
		return 0
	}
	var d time.Duration
	if shard == in.plan.StallShard && n == 0 && in.plan.StallFor > 0 {
		in.inject(SurfaceDelay)
		d = in.plan.StallFor
	}
	if in.plan.DelayP > 0 {
		r := rng.ChildAt(in.mix, SurfaceDelay, shard<<20|n)
		if r.Bool(in.plan.DelayP) {
			in.inject(SurfaceDelay)
			d += time.Duration(float64(in.plan.DelayMax) * r.Float64())
		}
	}
	return d
}

// ShipFaultKind classifies one wire-shipment attempt's injected fate.
type ShipFaultKind int

// Ship fault kinds.
const (
	ShipOK       ShipFaultKind = iota
	ShipDrop                   // sever the connection before any byte of the frame
	ShipTruncate               // write half the frame, then sever
	ShipDup                    // deliver the shipment twice (receiver must dedup)
	ShipDelay                  // delay the send, then deliver normally
)

// String names the kind for trace event details and metrics.
func (k ShipFaultKind) String() string {
	switch k {
	case ShipDrop:
		return "ship-drop"
	case ShipTruncate:
		return "ship-trunc"
	case ShipDup:
		return "ship-dup"
	case ShipDelay:
		return "ship-delay"
	}
	return "ok"
}

// ShipFault is one shipment attempt's wire decision.
type ShipFault struct {
	Kind ShipFaultKind
	// Delay is the injected send delay when Kind is ShipDelay.
	Delay time.Duration
}

// None reports a clean attempt.
func (f ShipFault) None() bool { return f.Kind == ShipOK }

// ShipFault decides one wire-shipment attempt's fate, keyed by
// (segment ID, retry attempt). Segment IDs are globally unique across
// PoPs (group*chunksPerGroup + chunk over the whole world), so the
// same plan injects the same faults whether the world ships from one
// process or many — and the total number of injected duplicates is a
// pure function of the plan, which the chaos tests check exactly.
// Attempts beyond 15 share the last attempt's decision (the retry
// budget is far smaller in practice).
func (in *Injector) ShipFault(segID, attempt int) ShipFault {
	if in == nil {
		return ShipFault{}
	}
	p := &in.plan
	if p.ShipDropP == 0 && p.ShipDupP == 0 && p.ShipTruncP == 0 && p.ShipDelayP == 0 {
		return ShipFault{}
	}
	if attempt > 15 {
		attempt = 15
	}
	r := rng.ChildAt(in.mix, SurfaceShip, segID<<4|attempt)
	u := r.Float64()
	switch {
	case u < p.ShipDropP:
		in.inject(SurfaceShip)
		return ShipFault{Kind: ShipDrop}
	case u < p.ShipDropP+p.ShipTruncP:
		in.inject(SurfaceShip)
		return ShipFault{Kind: ShipTruncate}
	case u < p.ShipDropP+p.ShipTruncP+p.ShipDupP:
		// Duplicates only fire on the first attempt so the injected-dup
		// count stays a function of the shipped set, not of how many
		// retries other faults happened to cause.
		if attempt == 0 {
			in.inject(SurfaceShip)
			return ShipFault{Kind: ShipDup}
		}
	case u < p.ShipDropP+p.ShipTruncP+p.ShipDupP+p.ShipDelayP:
		in.inject(SurfaceShip)
		return ShipFault{Kind: ShipDelay, Delay: time.Duration(float64(p.ShipDelayMax) * r.Float64())}
	}
	return ShipFault{}
}

// StageBudget returns the plan's per-shard-stage deadline (0 = none).
func (in *Injector) StageBudget() time.Duration {
	if in == nil {
		return 0
	}
	return in.plan.StageBudget
}

// Policy returns the recovery policy the plan prescribes, with jitter
// drawn from a split RNG stream per call site (the id keeps concurrent
// sites from sharing a generator). Timing-only: jitter never affects
// outcomes.
func (in *Injector) Policy(id int) Policy {
	if in == nil {
		return Policy{}
	}
	return Policy{
		MaxAttempts: in.plan.RetryAttempts,
		BaseDelay:   in.plan.RetryBase,
		Jitter:      0.5,
		RNG:         rng.ChildAt(in.mix, "retry-jitter", id),
	}
}

// SinkFaultKey renders a sample's identity for FaultError.Key.
func SinkFaultKey(s sample.Sample) string {
	return "sample " + strconv.FormatUint(s.SessionID, 10) + " group " + s.Key().String()
}
