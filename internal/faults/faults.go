// Package faults is the deterministic fault-injection and recovery
// layer for the edge pipeline. The paper's methodology presumes a
// collection fabric that keeps producing trustworthy 15-minute
// aggregates while parts of the edge misbehave (§3.3–§3.4 reason
// explicitly about noisy and incomplete groups); this package gives the
// reproduction the same property, on purpose and under test:
//
//   - Plan: a parseable description of which failures to inject at
//     which surfaces — transient/permanent collector-sink errors,
//     slow or stalled shard workers, corrupt or truncated sample
//     batches, and per-PoP world outages.
//   - Injector: the decision engine. Every decision is a pure function
//     of (plan seed ⊕ study seed, surface label, stable identity), so
//     the same plan on the same world injects exactly the same faults
//     at any worker count — the chaos analogue of the repo's
//     byte-identical-report guarantee.
//   - Retry: capped exponential backoff with jitter drawn from a split
//     RNG (timing only; outcomes stay deterministic).
//   - Coverage: graceful-degradation accounting. A degraded run is
//     explicitly labeled — groups dropped, samples lost, retries spent,
//     quarantined groups — never silently wrong.
//
// The package is deliberately mechanism-only: it decides and accounts,
// while the pipeline packages (study, collector, cmd/edgesim) own the
// recovery policy — retry, quarantine, or fail fast.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Outage marks one PoP as down for a half-open window range
// [From, To): sessions the world would have served from that PoP in
// those windows are never generated and are accounted as lost.
type Outage struct {
	PoP  string
	From int
	To   int
}

// Covers reports whether the outage suppresses (pop, win).
func (o Outage) Covers(pop string, win int) bool {
	return pop == o.PoP && win >= o.From && win < o.To
}

// Plan describes the faults to inject into one run. The zero value
// injects nothing; a nil *Plan everywhere means "no injection". Plans
// are data — they carry no RNG state — so the same plan can drive the
// sequential oracle and the sharded pipeline to identical outcomes.
type Plan struct {
	// Seed separates the fault lineage from the world lineage; it is
	// mixed with the study seed so two studies with the same plan do not
	// share fault positions.
	Seed uint64

	// SinkTransientP is the per-sample probability that the collector
	// sink fails transiently (recoverable by retry). SinkStreak bounds
	// the consecutive transient failures one sample can draw (default 2).
	SinkTransientP float64
	SinkStreak     int
	// SinkPermanentP is the per-sample probability that the sink fails
	// permanently; the sample's user group is quarantined.
	SinkPermanentP float64

	// TruncateP is the per-group probability that the group's sample
	// batch loses its tail; TruncateFrac is the fraction lost
	// (default 0.5).
	TruncateP    float64
	TruncateFrac float64
	// CorruptP is the per-group probability that the group's batch is
	// wholly corrupt and must be dropped.
	CorruptP float64
	// FailGroups lists world group indices whose batches permanently
	// fail — the "permanently-failing shard" scenario.
	FailGroups []int

	// DelayP is the per-shard-dispatch probability of an injected delay
	// of up to DelayMax (default 2ms) — scheduling chaos that must not
	// change any output byte.
	DelayP   float64
	DelayMax time.Duration
	// StallShard, when ≥ 0, stalls that aggregation shard for StallFor
	// before its first batch (default 2×StageBudget). Combined with
	// StageBudget it exercises the deadline path. -1 disables.
	StallShard int
	StallFor   time.Duration

	// StageBudget, when positive, bounds each aggregation shard stage's
	// wall time (pipeline.GoBudget); a stalled stage fails with a
	// StageTimeoutError instead of hanging the run.
	StageBudget time.Duration

	// Outages lists per-PoP world outages.
	Outages []Outage

	// Wire-fault probabilities for the segment-shipping surface
	// (internal/ship), decided per (segment, attempt): ShipDropP drops
	// the shipment before any byte is written and severs the
	// connection; ShipTruncP writes half the frame then severs;
	// ShipDupP delivers the shipment twice (the merger must dedup);
	// ShipDelayP delays the send by up to ShipDelayMax (default 2ms).
	// All are transport-level: they may never change report bytes.
	ShipDropP    float64
	ShipDupP     float64
	ShipTruncP   float64
	ShipDelayP   float64
	ShipDelayMax time.Duration

	// RetryAttempts and RetryBase override the recovery policy derived
	// from the plan (defaults: 4 attempts, 1ms base backoff).
	RetryAttempts int
	RetryBase     time.Duration
}

// withDefaults fills derived fields.
func (p Plan) withDefaults() Plan {
	if p.SinkStreak <= 0 {
		p.SinkStreak = 2
	}
	if p.TruncateFrac <= 0 || p.TruncateFrac > 1 {
		p.TruncateFrac = 0.5
	}
	if p.DelayMax <= 0 {
		p.DelayMax = 2 * time.Millisecond
	}
	if p.ShipDelayMax <= 0 {
		p.ShipDelayMax = 2 * time.Millisecond
	}
	if p.RetryAttempts <= 0 {
		p.RetryAttempts = 4
	}
	if p.RetryBase <= 0 {
		p.RetryBase = time.Millisecond
	}
	if p.StallFor <= 0 {
		p.StallFor = 2 * p.StageBudget
	}
	return p
}

// Spec renders the plan back into its canonical spec string — the form
// the coverage section prints, so a degraded report names the exact
// plan that degraded it. Fields at their zero/default value are
// elided; the output is deterministic.
func (p *Plan) Spec() string {
	if p == nil {
		return "none"
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if p.Seed != 0 {
		add("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.SinkTransientP > 0 {
		add("sink-transient", trimFloat(p.SinkTransientP))
	}
	if p.SinkStreak > 0 {
		add("sink-streak", strconv.Itoa(p.SinkStreak))
	}
	if p.SinkPermanentP > 0 {
		add("sink-permanent", trimFloat(p.SinkPermanentP))
	}
	if p.TruncateP > 0 {
		add("truncate", trimFloat(p.TruncateP))
	}
	if p.TruncateFrac > 0 {
		add("truncate-frac", trimFloat(p.TruncateFrac))
	}
	if p.CorruptP > 0 {
		add("corrupt", trimFloat(p.CorruptP))
	}
	if len(p.FailGroups) > 0 {
		gs := make([]string, len(p.FailGroups))
		for i, g := range p.FailGroups {
			gs[i] = strconv.Itoa(g)
		}
		add("fail-group", strings.Join(gs, "|"))
	}
	if p.DelayP > 0 {
		add("delay", trimFloat(p.DelayP))
		add("delay-max", p.DelayMax.String())
	}
	if p.StallShard > 0 || (p.StallShard == 0 && p.StallFor > 0) {
		add("stall-shard", strconv.Itoa(p.StallShard))
	}
	if p.StageBudget > 0 {
		add("stage-budget", p.StageBudget.String())
	}
	for _, o := range p.Outages {
		add("outage", fmt.Sprintf("%s:%d-%d", o.PoP, o.From, o.To))
	}
	if p.ShipDropP > 0 {
		add("ship-drop", trimFloat(p.ShipDropP))
	}
	if p.ShipDupP > 0 {
		add("ship-dup", trimFloat(p.ShipDupP))
	}
	if p.ShipTruncP > 0 {
		add("ship-trunc", trimFloat(p.ShipTruncP))
	}
	if p.ShipDelayP > 0 {
		add("ship-delay", trimFloat(p.ShipDelayP))
		add("ship-delay-max", p.ShipDelayMax.String())
	}
	if p.RetryAttempts > 0 {
		add("retries", strconv.Itoa(p.RetryAttempts))
	}
	if p.RetryBase > 0 {
		add("retry-base", p.RetryBase.String())
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, ";")
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsePlan parses a fault-plan spec: semicolon- or comma-separated
// key=value pairs. Keys:
//
//	seed=N                  fault lineage seed
//	sink-transient=P        per-sample transient sink-failure probability
//	sink-streak=N           max consecutive transient failures (default 2)
//	sink-permanent=P        per-sample permanent sink-failure probability
//	truncate=P              per-group batch-truncation probability
//	truncate-frac=F         tail fraction lost on truncation (default 0.5)
//	corrupt=P               per-group whole-batch corruption probability
//	fail-group=I|J|...      group indices whose batches permanently fail
//	delay=P                 per-dispatch shard-delay probability
//	delay-max=D             max injected delay (default 2ms)
//	stall-shard=I           stall shard I before its first batch
//	stall-for=D             stall duration (default 2×stage-budget)
//	stage-budget=D          per-shard-stage deadline (0 = none)
//	outage=POP:A-B          PoP down for windows [A, B)
//	ship-drop=P             per-attempt shipment drop probability
//	ship-dup=P              per-shipment duplicate-delivery probability
//	ship-trunc=P            per-attempt mid-frame truncation probability
//	ship-delay=P            per-attempt shipment delay probability
//	ship-delay-max=D        max injected shipment delay (default 2ms)
//	retries=N               retry attempts (default 4)
//	retry-base=D            base backoff (default 1ms)
//
// Durations use Go syntax ("50ms"). The empty string returns a nil
// plan (no injection).
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Plan{StallShard: -1}
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' })
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad plan field %q: want key=value", f)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "sink-transient":
			p.SinkTransientP, err = parseProb(v)
		case "sink-streak":
			p.SinkStreak, err = strconv.Atoi(v)
		case "sink-permanent":
			p.SinkPermanentP, err = parseProb(v)
		case "truncate":
			p.TruncateP, err = parseProb(v)
		case "truncate-frac":
			p.TruncateFrac, err = parseProb(v)
		case "corrupt":
			p.CorruptP, err = parseProb(v)
		case "fail-group":
			for _, g := range strings.Split(v, "|") {
				n, perr := strconv.Atoi(strings.TrimSpace(g))
				if perr != nil {
					return nil, fmt.Errorf("faults: bad fail-group index %q", g)
				}
				p.FailGroups = append(p.FailGroups, n)
			}
			sort.Ints(p.FailGroups)
		case "delay":
			p.DelayP, err = parseProb(v)
		case "delay-max":
			p.DelayMax, err = time.ParseDuration(v)
		case "stall-shard":
			p.StallShard, err = strconv.Atoi(v)
		case "stall-for":
			p.StallFor, err = time.ParseDuration(v)
		case "stage-budget":
			p.StageBudget, err = time.ParseDuration(v)
		case "outage":
			var o Outage
			o, err = parseOutage(v)
			p.Outages = append(p.Outages, o)
		case "ship-drop":
			p.ShipDropP, err = parseProb(v)
		case "ship-dup":
			p.ShipDupP, err = parseProb(v)
		case "ship-trunc":
			p.ShipTruncP, err = parseProb(v)
		case "ship-delay":
			p.ShipDelayP, err = parseProb(v)
		case "ship-delay-max":
			p.ShipDelayMax, err = time.ParseDuration(v)
		case "retries":
			p.RetryAttempts, err = strconv.Atoi(v)
		case "retry-base":
			p.RetryBase, err = time.ParseDuration(v)
		default:
			return nil, fmt.Errorf("faults: unknown plan key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	if p.StallShard >= 0 && p.StageBudget <= 0 {
		return nil, errors.New("faults: stall-shard requires stage-budget (a stalled stage with no deadline hangs the run)")
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", f)
	}
	return f, nil
}

func parseOutage(v string) (Outage, error) {
	pop, rng, ok := strings.Cut(v, ":")
	if !ok {
		return Outage{}, fmt.Errorf("want POP:FROM-TO, got %q", v)
	}
	a, b, ok := strings.Cut(rng, "-")
	if !ok {
		return Outage{}, fmt.Errorf("want POP:FROM-TO, got %q", v)
	}
	from, err1 := strconv.Atoi(a)
	to, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || from < 0 || to <= from {
		return Outage{}, fmt.Errorf("bad window range %q", rng)
	}
	return Outage{PoP: pop, From: from, To: to}, nil
}

// FaultError is an injected (or classified) failure. Transient
// failures are retryable; everything else is permanent and must be
// quarantined or propagated.
type FaultError struct {
	// Surface names the injection point ("sink", "batch", "write").
	Surface string
	// Key identifies the failing unit (sample ID, group index, ...).
	Key string
	// Transient marks the failure recoverable by retry.
	Transient bool
}

// Error renders the fault.
func (e *FaultError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("injected %s fault at %s (%s)", kind, e.Surface, e.Key)
}

// IsTransient reports whether err is (or wraps) a transient fault —
// the default retry predicate.
func IsTransient(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe) && fe.Transient
}
