// Package tcpsim models a TCP sender/receiver pair over netsim links,
// with the mechanics the paper's methodology depends on: slow start with
// byte-counted congestion-window growth gated on being cwnd-limited
// (the Linux behaviour described in the paper's footnote 3), Reno and
// CUBIC congestion avoidance (with optional HyStart), fast retransmit
// and a simplified NewReno recovery, retransmission timeouts, delayed
// acknowledgments, and MinRTT/sRTT tracking.
//
// The connection carries data in one direction (server → client), which
// matches the measurement setting: the load balancer serves responses
// and observes acknowledgments. Requests are modelled at the HTTP layer
// (package httpsim).
package tcpsim

import (
	"math"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/units"
)

// Algorithm selects the congestion-control algorithm.
type Algorithm int

// Supported congestion-control algorithms.
const (
	Reno Algorithm = iota
	Cubic
	// BBR is the simplified model-based controller in bbr.go.
	BBR
)

// Config parameterises a connection.
type Config struct {
	// MSS is the payload bytes per segment. Defaults to units.DefaultMSS.
	MSS int
	// InitCwndPackets is the initial congestion window in segments
	// (Linux default 10).
	InitCwndPackets int
	// CC selects the congestion-control algorithm.
	CC Algorithm
	// DelayedAcks enables receiver delayed acknowledgments (ack every
	// second segment or after DelayedAckTimeout). The §3.2.3 validation
	// disables them to match cwnd growth in the Linux kernel, as the
	// paper does with NS3 (footnote 7).
	DelayedAcks bool
	// DelayedAckTimeout is the delayed-ack timer (Linux uses 40ms+).
	DelayedAckTimeout time.Duration
	// MinRTO clamps the retransmission timeout (Linux: 200ms).
	MinRTO time.Duration
	// HyStart enables hybrid slow start (delay-based exit) for CUBIC.
	HyStart bool
	// SlowStartAfterIdle restarts the congestion window from the
	// initial window after the connection idles longer than the RTO
	// (RFC 2861, the Linux default behaviour) — one of the reasons the
	// measured Wnic can sit far below the ideal chained Wstart (§3.2.2).
	SlowStartAfterIdle bool
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = units.DefaultMSS
	}
	if c.InitCwndPackets <= 0 {
		c.InitCwndPackets = 10
	}
	if c.DelayedAckTimeout <= 0 {
		c.DelayedAckTimeout = 40 * time.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	return c
}

// watch is an instrumentation trigger on a sequence number.
type watch struct {
	seq int64
	fn  func(t netsim.Time)
}

// Conn is a simulated TCP connection carrying a byte stream from the
// sender (server) to the receiver (client).
type Conn struct {
	sim *netsim.Sim
	cfg Config
	fwd *netsim.Link // data: server → client
	rev *netsim.Link // acks: client → server

	// Sender state (byte sequence space).
	sndUna   int64
	sndNxt   int64
	writeEnd int64
	cwnd     int64
	ssthresh int64
	dupAcks  int

	inRecovery  bool
	recoveryEnd int64
	// SACK-assisted recovery state: the receiver's reported first
	// out-of-order block, and the next hole byte to repair.
	sackLo, sackHi int64
	recoverNext    int64

	srtt, rttvar, rto time.Duration
	minRTT            time.Duration
	lastSend          netsim.Time
	rtoGen            uint64
	backoff           int

	// cwnd-limited tracking (footnote 3): in slow start the connection
	// is limited if more than half the cwnd was in flight; after slow
	// start, if sending was blocked on cwnd since the last ack.
	blockedOnCwnd bool

	// CUBIC state.
	wMax       int64
	epochStart netsim.Time
	hystartOn  bool

	// BBR state.
	bbrS bbr

	// Receiver state.
	rcvNxt     int64
	ooo        []interval // out-of-order byte ranges, sorted, disjoint
	unackedPkt int
	ackTimGen  uint64

	// Instrumentation.
	sendWatches []watch
	ackWatches  []watch

	// Counters for tests and debugging.
	Retransmits   uint64
	Timeouts      uint64
	FastRecovered uint64

	// OnAllAcked, if set, fires whenever every written byte has been
	// acknowledged.
	OnAllAcked func()
	// OnDeliver, if set, fires at the receiver whenever in-order data
	// becomes available, with the number of newly contiguous bytes —
	// the hook split-connection proxies (package pep) relay from.
	OnDeliver func(newBytes int64)

	closed bool
}

type interval struct{ lo, hi int64 }

// New creates a connection over the given links and wires their Deliver
// callbacks. The links must not be shared with other connections.
func New(sim *netsim.Sim, cfg Config, fwd, rev *netsim.Link) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		sim:       sim,
		cfg:       cfg,
		fwd:       fwd,
		rev:       rev,
		cwnd:      int64(cfg.InitCwndPackets * cfg.MSS),
		ssthresh:  math.MaxInt64 / 4,
		rto:       time.Second,
		minRTT:    time.Duration(math.MaxInt64),
		hystartOn: cfg.HyStart && cfg.CC == Cubic,
	}
	fwd.Deliver = c.clientReceive
	rev.Deliver = c.serverReceive
	// Handshake: a zero-length segment gives the first RTT sample before
	// any data is transmitted, as SYN/SYN-ACK does for the kernel.
	fwd.Send(netsim.Packet{Seq: -1, Len: 0, SentAt: sim.Now()})
	return c
}

// Cwnd returns the sender congestion window in bytes — the value the
// instrumentation records as Wnic when a response's first byte reaches
// the NIC.
func (c *Conn) Cwnd() int64 { return c.cwnd }

// MinRTT returns the minimum RTT observed, or 0 if no sample yet.
func (c *Conn) MinRTT() time.Duration {
	if c.minRTT == time.Duration(math.MaxInt64) {
		return 0
	}
	return c.minRTT
}

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Acked returns the highest cumulatively acknowledged byte offset.
func (c *Conn) Acked() int64 { return c.sndUna }

// NextWriteOffset returns the stream offset the next Write will start at.
func (c *Conn) NextWriteOffset() int64 { return c.writeEnd }

// InFlight returns unacknowledged bytes.
func (c *Conn) InFlight() int64 { return c.sndNxt - c.sndUna }

// Idle reports whether all written data has been acknowledged.
func (c *Conn) Idle() bool { return c.sndUna >= c.writeEnd }

// Write appends n bytes to the outgoing stream and attempts to send.
// It returns the byte range [start, end) occupied by the write.
func (c *Conn) Write(n int) (start, end int64) {
	if n <= 0 || c.closed {
		return c.writeEnd, c.writeEnd
	}
	if c.cfg.SlowStartAfterIdle && c.Idle() {
		if idle := c.sim.Now() - c.lastSend; idle > c.rto {
			iw := int64(c.cfg.InitCwndPackets * c.cfg.MSS)
			if c.cwnd > iw {
				c.cwnd = iw
				c.ssthresh = math.MaxInt64 / 4
			}
		}
	}
	start = c.writeEnd
	c.writeEnd += int64(n)
	c.trySend()
	return start, c.writeEnd
}

// Close stops the connection: pending timers become no-ops and no new
// data is accepted.
func (c *Conn) Close() {
	c.closed = true
	c.rtoGen++
	c.ackTimGen++
}

// WatchFirstSend registers fn to run when the byte at offset seq is
// first written to the wire ("written to the NIC" in the paper).
// Register the watch before writing the data: if seq has already been
// transmitted the callback fires immediately with the current time,
// which is later than the true transmission time.
func (c *Conn) WatchFirstSend(seq int64, fn func(t netsim.Time)) {
	if seq < c.sndNxt {
		fn(c.sim.Now())
		return
	}
	c.sendWatches = append(c.sendWatches, watch{seq: seq, fn: fn})
	sort.Slice(c.sendWatches, func(i, j int) bool { return c.sendWatches[i].seq < c.sendWatches[j].seq })
}

// WatchAcked registers fn to run when the cumulative acknowledgment
// reaches at least seq.
func (c *Conn) WatchAcked(seq int64, fn func(t netsim.Time)) {
	if c.sndUna >= seq {
		fn(c.sim.Now())
		return
	}
	c.ackWatches = append(c.ackWatches, watch{seq: seq, fn: fn})
	sort.Slice(c.ackWatches, func(i, j int) bool { return c.ackWatches[i].seq < c.ackWatches[j].seq })
}

// trySend transmits as many segments as the window allows.
func (c *Conn) trySend() {
	if c.closed {
		return
	}
	sent := false
	for c.sndNxt < c.writeEnd {
		if c.sndNxt-c.sndUna+int64(c.cfg.MSS) > c.cwnd {
			// Blocked on cwnd with data pending.
			c.blockedOnCwnd = true
			break
		}
		segLen := int64(c.cfg.MSS)
		if c.sndNxt+segLen > c.writeEnd {
			segLen = c.writeEnd - c.sndNxt
		}
		c.transmit(c.sndNxt, int(segLen), false)
		c.sndNxt += segLen
		c.lastSend = c.sim.Now()
		sent = true
	}
	if sent {
		c.armRTO()
	}
}

// transmit puts one segment on the wire and fires send watches.
func (c *Conn) transmit(seq int64, length int, retx bool) {
	now := c.sim.Now()
	c.fireSendWatches(seq+int64(length), now)
	sentAt := now
	if retx {
		c.Retransmits++
		sentAt = -1 // Karn: no RTT sample from retransmitted segments
	}
	c.fwd.Send(netsim.Packet{Seq: seq, Len: length, SentAt: sentAt, Retransmit: retx})
}

// fireSendWatches fires watches for every byte below segEnd (the
// exclusive end of the segment just written to the wire).
func (c *Conn) fireSendWatches(segEnd int64, now netsim.Time) {
	fired := 0
	for _, w := range c.sendWatches {
		if w.seq >= segEnd {
			break
		}
		w.fn(now)
		fired++
	}
	if fired > 0 {
		c.sendWatches = c.sendWatches[fired:]
	}
}

// --- Receiver side -----------------------------------------------------

func (c *Conn) clientReceive(p netsim.Packet) {
	if c.closed {
		return
	}
	if p.Seq == -1 {
		// Handshake probe: ack immediately.
		c.sendAck(p.SentAt, true)
		return
	}
	end := p.Seq + int64(p.Len)
	switch {
	case p.Seq <= c.rcvNxt && end > c.rcvNxt:
		before := c.rcvNxt
		c.rcvNxt = end
		c.integrateOOO()
		if c.OnDeliver != nil {
			c.OnDeliver(c.rcvNxt - before)
		}
		c.scheduleAck(p)
	case p.Seq > c.rcvNxt:
		c.insertOOO(p.Seq, end)
		// Out-of-order data: immediate duplicate ack.
		c.sendAck(p.SentAt, true)
	default:
		// Fully duplicate segment: immediate ack restores sender state.
		c.sendAck(p.SentAt, true)
	}
}

func (c *Conn) insertOOO(lo, hi int64) {
	c.ooo = append(c.ooo, interval{lo, hi})
	sort.Slice(c.ooo, func(i, j int) bool { return c.ooo[i].lo < c.ooo[j].lo })
	// Merge overlaps.
	merged := c.ooo[:0]
	for _, iv := range c.ooo {
		if n := len(merged); n > 0 && iv.lo <= merged[n-1].hi {
			if iv.hi > merged[n-1].hi {
				merged[n-1].hi = iv.hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	c.ooo = merged
}

func (c *Conn) integrateOOO() {
	for len(c.ooo) > 0 && c.ooo[0].lo <= c.rcvNxt {
		if c.ooo[0].hi > c.rcvNxt {
			c.rcvNxt = c.ooo[0].hi
		}
		c.ooo = c.ooo[1:]
	}
}

// scheduleAck applies the delayed-ack policy for in-order data.
func (c *Conn) scheduleAck(p netsim.Packet) {
	if !c.cfg.DelayedAcks {
		c.sendAck(p.SentAt, true)
		return
	}
	c.unackedPkt++
	if c.unackedPkt >= 2 || len(c.ooo) > 0 {
		c.sendAck(p.SentAt, true)
		return
	}
	gen := c.ackTimGen
	echo := p.SentAt
	c.sim.Schedule(c.cfg.DelayedAckTimeout, func() {
		if c.closed || gen != c.ackTimGen || c.unackedPkt == 0 {
			return
		}
		c.sendAck(echo, false)
	})
}

func (c *Conn) sendAck(echo netsim.Time, resetTimer bool) {
	c.unackedPkt = 0
	if resetTimer {
		c.ackTimGen++
	}
	p := netsim.Packet{IsAck: true, Ack: c.rcvNxt, Len: 0, SentAt: echo}
	if len(c.ooo) > 0 {
		// One-block SACK: report the first out-of-order range so the
		// sender can repair multiple holes per round trip.
		p.SackLo, p.SackHi = c.ooo[0].lo, c.ooo[0].hi
	}
	c.rev.Send(p)
}

// --- Sender ACK processing ---------------------------------------------

func (c *Conn) serverReceive(p netsim.Packet) {
	if c.closed || !p.IsAck {
		return
	}
	now := c.sim.Now()
	if p.SentAt >= 0 {
		c.sampleRTT(now - p.SentAt)
	}
	// Track the receiver's out-of-order block (one-block SACK).
	c.sackLo, c.sackHi = p.SackLo, p.SackHi
	ack := p.Ack
	switch {
	case ack > c.sndUna:
		bytesAcked := ack - c.sndUna
		c.sndUna = ack
		c.dupAcks = 0
		c.backoff = 0
		if c.inRecovery {
			if ack >= c.recoveryEnd {
				c.exitRecovery()
			} else {
				// NewReno partial ack: deflate the window by the bytes
				// the ack cleared, then repair more holes. BBR keeps its
				// model-sized window.
				if c.cfg.CC != BBR {
					c.cwnd -= bytesAcked
					if c.cwnd < c.ssthresh {
						c.cwnd = c.ssthresh
					}
				} else {
					c.bbrOnAck(bytesAcked)
				}
				if c.recoverNext < c.sndUna {
					c.recoverNext = c.sndUna
				}
				c.repairHoles()
			}
		} else {
			c.grow(bytesAcked)
		}
		c.fireAckWatches(now)
		if c.sndUna >= c.writeEnd {
			c.rtoGen++ // nothing outstanding; disarm RTO
			if c.OnAllAcked != nil {
				c.OnAllAcked()
			}
		} else {
			c.armRTO()
		}
		c.trySend()
	case ack == c.sndUna && c.InFlight() > 0:
		c.dupAcks++
		if c.inRecovery {
			c.repairHoles()
			c.trySend()
		} else if c.dupAcks >= 3 {
			c.enterRecovery()
		}
	}
}

// repairHoles retransmits missing segments during recovery, guided by
// the receiver's SACK block: bytes between the cumulative ack and the
// out-of-order block are holes. At most two segments go out per
// incoming ack, preserving ack clocking.
func (c *Conn) repairHoles() {
	if !c.inRecovery {
		return
	}
	mss := int64(c.cfg.MSS)
	for budget := 2; budget > 0; budget-- {
		if c.recoverNext < c.sndUna {
			c.recoverNext = c.sndUna
		}
		// Skip bytes the receiver already holds.
		if c.sackHi > 0 && c.recoverNext >= c.sackLo && c.recoverNext < c.sackHi {
			c.recoverNext = c.sackHi
		}
		if c.recoverNext >= c.recoveryEnd || c.recoverNext >= c.writeEnd {
			return
		}
		// Without newer SACK information, do not spray past the first
		// reported hole region plus one segment.
		segLen := mss
		if c.recoverNext+segLen > c.writeEnd {
			segLen = c.writeEnd - c.recoverNext
		}
		if segLen <= 0 {
			return
		}
		c.transmit(c.recoverNext, int(segLen), true)
		c.recoverNext += segLen
	}
}

func (c *Conn) sampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if rtt < c.minRTT {
		c.minRTT = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.hystartOn && c.minRTT < time.Duration(math.MaxInt64) {
		// HyStart delay-based exit: leave slow start when RTT rises
		// noticeably above the floor.
		thresh := c.minRTT + maxDur(4*time.Millisecond, c.minRTT/8)
		if c.cwnd < c.ssthresh && rtt > thresh {
			c.ssthresh = c.cwnd
			c.cubicEpoch()
		}
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// grow applies congestion-window growth for newly acknowledged bytes,
// gated on the connection having been cwnd-limited (footnote 3).
func (c *Conn) grow(bytesAcked int64) {
	if c.cfg.CC == BBR {
		// BBR maintains its path model on every ack and sizes the
		// window from it; the cwnd-limited gate does not apply.
		c.bbrOnAck(bytesAcked)
		return
	}
	inSlowStart := c.cwnd < c.ssthresh
	limited := c.blockedOnCwnd
	if inSlowStart {
		// In slow start Linux considers the connection limited if more
		// than half the cwnd was in flight.
		limited = limited || c.InFlight()*2 > c.cwnd
	}
	c.blockedOnCwnd = false
	if !limited {
		return
	}
	if inSlowStart {
		c.cwnd += bytesAcked
		return
	}
	switch c.cfg.CC {
	case Cubic:
		c.cubicGrow(bytesAcked)
	default: // Reno additive increase, byte counted
		c.cwnd += int64(c.cfg.MSS) * bytesAcked / c.cwnd
		if c.cwnd < int64(c.cfg.MSS) {
			c.cwnd = int64(c.cfg.MSS)
		}
	}
}

// --- CUBIC --------------------------------------------------------------

const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

func (c *Conn) cubicEpoch() {
	c.epochStart = c.sim.Now()
	c.wMax = c.cwnd
}

func (c *Conn) cubicGrow(bytesAcked int64) {
	if c.epochStart == 0 {
		c.cubicEpoch()
	}
	t := (c.sim.Now() - c.epochStart).Seconds()
	mss := float64(c.cfg.MSS)
	wmaxPkts := float64(c.wMax) / mss
	k := math.Cbrt(wmaxPkts * (1 - cubicBeta) / cubicC)
	target := cubicC*math.Pow(t-k, 3) + wmaxPkts // in packets
	cur := float64(c.cwnd) / mss
	if target > cur {
		// Approach the cubic target, bounded to 1.5x per RTT worth of acks.
		inc := (target - cur) / cur * float64(bytesAcked)
		if inc > float64(bytesAcked)/2 {
			inc = float64(bytesAcked) / 2
		}
		c.cwnd += int64(inc)
	} else {
		// TCP-friendly floor: grow at least like Reno.
		c.cwnd += int64(mss) * bytesAcked / c.cwnd
	}
	if c.cwnd < int64(c.cfg.MSS) {
		c.cwnd = int64(c.cfg.MSS)
	}
}

// --- Loss recovery -------------------------------------------------------

func (c *Conn) enterRecovery() {
	c.inRecovery = true
	c.recoveryEnd = c.sndNxt
	c.FastRecovered++
	if c.cfg.CC == BBR {
		// BBR retransmits but does not treat loss as congestion.
		c.bbrOnLoss()
		c.recoverNext = c.sndUna
		c.retransmitOne()
		c.recoverNext = c.sndUna + int64(c.cfg.MSS)
		c.armRTO()
		return
	}
	half := c.InFlight() / 2
	minW := int64(2 * c.cfg.MSS)
	if half < minW {
		half = minW
	}
	c.ssthresh = half
	if c.cfg.CC == Cubic {
		c.wMax = c.cwnd
		c.ssthresh = int64(float64(c.cwnd) * cubicBeta)
		if c.ssthresh < minW {
			c.ssthresh = minW
		}
	}
	c.cwnd = c.ssthresh + int64(3*c.cfg.MSS)
	c.recoverNext = c.sndUna
	c.retransmitOne()
	c.recoverNext = c.sndUna + int64(c.cfg.MSS)
	c.armRTO()
}

func (c *Conn) exitRecovery() {
	c.inRecovery = false
	if c.cfg.CC == BBR {
		return // the model, not ssthresh, sizes the window
	}
	c.cwnd = c.ssthresh
	if c.cfg.CC == Cubic {
		c.cubicEpoch()
		c.wMax = c.cwnd
	}
}

// retransmitOne resends the first unacknowledged segment.
func (c *Conn) retransmitOne() {
	segLen := int64(c.cfg.MSS)
	if c.sndUna+segLen > c.writeEnd {
		segLen = c.writeEnd - c.sndUna
	}
	if segLen <= 0 {
		return
	}
	c.transmit(c.sndUna, int(segLen), true)
}

func (c *Conn) armRTO() {
	c.rtoGen++
	gen := c.rtoGen
	timeout := c.rto << uint(c.backoff)
	if timeout > 60*time.Second {
		timeout = 60 * time.Second
	}
	c.sim.Schedule(timeout, func() {
		if c.closed || gen != c.rtoGen || c.InFlight() == 0 {
			return
		}
		c.onTimeout()
	})
}

func (c *Conn) onTimeout() {
	c.Timeouts++
	if c.cfg.CC == BBR {
		// Conservative restart, but the model re-expands immediately.
		c.bbrOnLoss()
		c.sndNxt = c.sndUna
		c.dupAcks = 0
		c.inRecovery = false
		c.backoff++
		if c.backoff > 6 {
			c.backoff = 6
		}
		c.trySend()
		c.armRTO()
		return
	}
	half := c.InFlight() / 2
	minW := int64(2 * c.cfg.MSS)
	if half < minW {
		half = minW
	}
	c.ssthresh = half
	c.cwnd = int64(c.cfg.MSS)
	c.sndNxt = c.sndUna // go-back-N
	c.dupAcks = 0
	c.inRecovery = false
	c.backoff++
	if c.backoff > 6 {
		c.backoff = 6
	}
	if c.cfg.CC == Cubic {
		c.epochStart = 0
	}
	c.trySend()
	c.armRTO()
}

func (c *Conn) fireAckWatches(now netsim.Time) {
	fired := 0
	for _, w := range c.ackWatches {
		if w.seq > c.sndUna {
			break
		}
		w.fn(now)
		fired++
	}
	if fired > 0 {
		c.ackWatches = c.ackWatches[fired:]
	}
}
