package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
)

// dumbbell builds the standard test topology: a forward (data) link with
// the given bottleneck rate and per-direction delay, and an unconstrained
// reverse (ack) path.
func dumbbell(sim *netsim.Sim, rate units.Rate, oneWay time.Duration, queue int) (fwd, rev *netsim.Link) {
	fwd = &netsim.Link{Sim: sim, Rate: rate, Delay: oneWay, QueueLimit: queue}
	rev = &netsim.Link{Sim: sim, Delay: oneWay}
	return fwd, rev
}

func TestTransferCompletes(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 20
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 20*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	done := netsim.Time(-1)
	c.OnAllAcked = func() { done = sim.Now() }
	c.Write(100 * 1500)
	if !sim.Run() {
		t.Fatal("simulation did not converge")
	}
	if done < 0 {
		t.Fatal("transfer never completed")
	}
	if c.Acked() != 100*1500 {
		t.Fatalf("acked %d bytes, want %d", c.Acked(), 100*1500)
	}
}

func TestMinRTTMatchesPropagation(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 100*units.Mbps, 30*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(10 * 1500)
	sim.Run()
	// True propagation RTT is 60ms; header serialization at 100 Mbps is
	// negligible. MinRTT should be within a millisecond.
	if got := c.MinRTT(); got < 60*time.Millisecond || got > 61*time.Millisecond {
		t.Errorf("MinRTT = %v, want ~60ms", got)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	// With acks for every packet and byte-counted growth, the window
	// doubles each round trip while in slow start.
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 1000*units.Mbps, 50*time.Millisecond, 0)
	c := New(&sim, Config{InitCwndPackets: 10}, fwd, rev)
	c.Write(1000 * 1500) // plenty of data

	type snap struct {
		at   netsim.Time
		cwnd int64
	}
	var snaps []snap
	for i := 1; i <= 4; i++ {
		d := time.Duration(i)*100*time.Millisecond + 90*time.Millisecond
		sim.Schedule(d, func() { snaps = append(snaps, snap{sim.Now(), c.Cwnd()}) })
	}
	sim.RunUntil(600 * time.Millisecond)

	// cwnd after k full round trips of a fully-utilised slow start is
	// 10 * 2^k packets.
	want := []int64{20, 40, 80, 160}
	for i, s := range snaps {
		pkts := s.cwnd / 1500
		if pkts < want[i]-2 || pkts > want[i]+2 {
			t.Errorf("cwnd at %v = %d pkts, want ~%d", s.at, pkts, want[i])
		}
	}
}

func TestNoGrowthWhenNotCwndLimited(t *testing.T) {
	// An application sending a trickle (far below the window) must not
	// grow the cwnd (footnote 3).
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 100*units.Mbps, 10*time.Millisecond, 0)
	c := New(&sim, Config{InitCwndPackets: 10}, fwd, rev)
	for i := 0; i < 50; i++ {
		sim.Schedule(time.Duration(i)*50*time.Millisecond, func() { c.Write(1500) })
	}
	sim.Run()
	if pkts := c.Cwnd() / 1500; pkts > 11 {
		t.Errorf("cwnd grew to %d pkts without being cwnd-limited", pkts)
	}
}

func TestThroughputApproachesBottleneck(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	rate := 5 * units.Mbps
	fwd, rev := dumbbell(&sim, rate, 25*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	total := int64(2000 * 1500) // 3 MB
	var done netsim.Time
	c.OnAllAcked = func() { done = sim.Now() }
	c.Write(int(total))
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	goodput := units.RateOf(total, time.Duration(done))
	// Overheads (headers, slow start) keep goodput below the bottleneck,
	// but a 3MB transfer should get within 25%.
	if goodput < rate*3/4 {
		t.Errorf("goodput %v far below bottleneck %v", goodput, rate)
	}
	if goodput > rate {
		t.Errorf("goodput %v exceeds bottleneck %v", goodput, rate)
	}
}

func TestLossTriggersFastRecovery(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 20*time.Millisecond, 0)
	fwd.LossProb = 0.02
	fwd.RNG = rng.New(3)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(500 * 1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != 500*1500 {
		t.Fatalf("transfer incomplete under loss: %d", c.Acked())
	}
	if c.Retransmits == 0 {
		t.Error("expected retransmissions under 2% loss")
	}
	if c.FastRecovered == 0 && c.Timeouts == 0 {
		t.Error("expected at least one recovery episode")
	}
}

func TestQueueOverflowCausesLossAndRecovery(t *testing.T) {
	// A small drop-tail queue at the bottleneck forces self-induced loss
	// once slow start overshoots.
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := dumbbell(&sim, 2*units.Mbps, 20*time.Millisecond, 10)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(1000 * 1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != 1000*1500 {
		t.Fatalf("transfer incomplete: %d", c.Acked())
	}
	if fwd.Drops == 0 {
		t.Error("expected queue-overflow drops")
	}
}

func TestTimeoutRecovery(t *testing.T) {
	// Drop everything for a while: the sender must RTO and retry.
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 10*time.Millisecond, 0)
	fwd.LossProb = 1
	fwd.RNG = rng.New(1)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(10 * 1500)
	sim.Schedule(900*time.Millisecond, func() { fwd.LossProb = 0 })
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != 10*1500 {
		t.Fatalf("transfer incomplete after blackout: %d", c.Acked())
	}
	if c.Timeouts == 0 {
		t.Error("expected RTO during blackout")
	}
}

func TestDelayedAcksReduceAckCount(t *testing.T) {
	run := func(delayed bool) uint64 {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		fwd, rev := dumbbell(&sim, 10*units.Mbps, 20*time.Millisecond, 0)
		c := New(&sim, Config{DelayedAcks: delayed}, fwd, rev)
		c.Write(200 * 1500)
		sim.Run()
		if c.Acked() != 200*1500 {
			t.Fatalf("incomplete (delayed=%v): %d", delayed, c.Acked())
		}
		return rev.Delivered
	}
	withoutDelay := run(false)
	withDelay := run(true)
	if withDelay >= withoutDelay {
		t.Errorf("delayed acks (%d) should be fewer than immediate (%d)", withDelay, withoutDelay)
	}
	if withDelay < withoutDelay/3 {
		t.Errorf("delayed acks too few: %d vs %d", withDelay, withoutDelay)
	}
}

func TestDelayedAckTimeoutFlushesLastAck(t *testing.T) {
	// A single odd packet must still be acked after the delayed-ack
	// timeout.
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 100*units.Mbps, 5*time.Millisecond, 0)
	c := New(&sim, Config{DelayedAcks: true}, fwd, rev)
	c.Write(1500)
	sim.Run()
	if c.Acked() != 1500 {
		t.Errorf("odd final packet never acked: %d", c.Acked())
	}
	// The ack must have waited for the 40ms delayed-ack timer.
	if now := sim.Now(); now < 45*time.Millisecond {
		t.Errorf("final state at %v, expected delayed-ack timer to fire ≥45ms", now)
	}
}

func TestWatchFirstSendAndAcked(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 20*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	var sentAt, ackedAt netsim.Time
	start, end := c.Write(20 * 1500)
	c.WatchFirstSend(start, func(tm netsim.Time) { sentAt = tm })
	c.WatchAcked(end, func(tm netsim.Time) { ackedAt = tm })
	// Writing already transmitted the first window, so WatchFirstSend on
	// `start` fires immediately via the sorted scan on the next segment…
	// verify both eventually fire with sane ordering.
	sim.Run()
	if ackedAt == 0 {
		t.Fatal("ack watch never fired")
	}
	if sentAt > ackedAt {
		t.Errorf("send watch at %v after ack watch at %v", sentAt, ackedAt)
	}
	if ackedAt < 40*time.Millisecond {
		t.Errorf("full ack at %v, impossible before one RTT", ackedAt)
	}
}

func TestWatchFirstSendBeforeWrite(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 20*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	var sentAt netsim.Time = -1
	c.WatchFirstSend(0, func(tm netsim.Time) { sentAt = tm })
	sim.Schedule(100*time.Millisecond, func() { c.Write(1500) })
	sim.Run()
	if sentAt != 100*time.Millisecond {
		t.Errorf("first send at %v, want 100ms", sentAt)
	}
}

func TestWatchAckedAlreadySatisfied(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 5*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(1500)
	sim.Run()
	fired := false
	c.WatchAcked(1500, func(tm netsim.Time) { fired = true })
	if !fired {
		t.Error("watch on already-acked seq must fire immediately")
	}
}

func TestCubicCompletesAndRecovers(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := dumbbell(&sim, 5*units.Mbps, 30*time.Millisecond, 20)
	c := New(&sim, Config{CC: Cubic, HyStart: true}, fwd, rev)
	c.Write(2000 * 1500)
	var done netsim.Time
	c.OnAllAcked = func() { done = sim.Now() }
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != 2000*1500 {
		t.Fatalf("cubic transfer incomplete: %d", c.Acked())
	}
	goodput := units.RateOf(2000*1500, time.Duration(done))
	if goodput < 3*units.Mbps {
		t.Errorf("cubic goodput %v too low for 5 Mbps bottleneck", goodput)
	}
}

func TestIdleAndOffsets(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, 10*units.Mbps, 5*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	if !c.Idle() {
		t.Error("new conn should be idle")
	}
	s1, e1 := c.Write(3000)
	if s1 != 0 || e1 != 3000 {
		t.Errorf("first write range [%d,%d)", s1, e1)
	}
	s2, e2 := c.Write(1000)
	if s2 != 3000 || e2 != 4000 {
		t.Errorf("second write range [%d,%d)", s2, e2)
	}
	if c.Idle() {
		t.Error("conn with unacked data should not be idle")
	}
	sim.Run()
	if !c.Idle() {
		t.Error("conn should be idle after all acks")
	}
	if c.NextWriteOffset() != 4000 {
		t.Errorf("NextWriteOffset = %d", c.NextWriteOffset())
	}
}

func TestCloseStopsActivity(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, units.Mbps, 20*time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(100 * 1500)
	sim.RunUntil(50 * time.Millisecond)
	c.Close()
	if s, e := c.Write(1000); s != e {
		t.Error("write after close should be a no-op")
	}
	sim.Run() // must terminate without the conn rescheduling forever
}

func TestZeroWriteNoOp(t *testing.T) {
	var sim netsim.Sim
	fwd, rev := dumbbell(&sim, units.Mbps, time.Millisecond, 0)
	c := New(&sim, Config{}, fwd, rev)
	if s, e := c.Write(0); s != e {
		t.Error("Write(0) should be a no-op")
	}
	if s, e := c.Write(-5); s != e {
		t.Error("Write(-5) should be a no-op")
	}
}

func TestRetransmitsNotSampledForRTT(t *testing.T) {
	// Karn's algorithm: with heavy loss the RTT estimate must not be
	// corrupted by retransmission ambiguity — MinRTT stays ≥ propagation.
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd, rev := dumbbell(&sim, 5*units.Mbps, 25*time.Millisecond, 0)
	fwd.LossProb = 0.1
	fwd.RNG = rng.New(9)
	c := New(&sim, Config{}, fwd, rev)
	c.Write(300 * 1500)
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if got := c.MinRTT(); got < 50*time.Millisecond {
		t.Errorf("MinRTT = %v below propagation RTT 50ms", got)
	}
}

func BenchmarkTransfer1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		fwd, rev := dumbbell(&sim, 10*units.Mbps, 20*time.Millisecond, 0)
		c := New(&sim, Config{}, fwd, rev)
		c.Write(1 << 20)
		sim.Run()
		if c.Acked() != 1<<20 {
			b.Fatal("incomplete")
		}
	}
}

func TestSlowStartAfterIdle(t *testing.T) {
	run := func(enabled bool) int64 {
		var sim netsim.Sim
		sim.MaxSteps = 1 << 22
		fwd, rev := dumbbell(&sim, 100*units.Mbps, 10*time.Millisecond, 0)
		c := New(&sim, Config{SlowStartAfterIdle: enabled}, fwd, rev)
		c.Write(200 * 1500) // grow the window
		sim.Run()
		// Idle well past the RTO, then observe the window at next write.
		var wnic int64
		sim.Schedule(10*time.Second, func() {
			wnic = c.Cwnd()
			c.Write(1500)
		})
		sim.Run()
		_ = wnic
		return c.Cwnd()
	}
	withReset := run(true)
	without := run(false)
	if withReset > 10*1500+1500 {
		t.Errorf("idle restart left cwnd at %d", withReset)
	}
	if without <= 10*1500 {
		t.Errorf("without restart, cwnd should stay grown: %d", without)
	}
}

// TestPolicedTransferThrottled: a token-bucket policer on the data path
// forces the sender down to the policed rate.
func TestPolicedTransferThrottled(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	fwd, rev := dumbbell(&sim, 50*units.Mbps, 20*time.Millisecond, 0)
	fwd.Policer = &netsim.TokenBucket{Rate: 2 * units.Mbps, Burst: 30 * 1540}
	c := New(&sim, Config{}, fwd, rev)
	total := int64(500 * 1500)
	var done netsim.Time
	c.OnAllAcked = func() { done = sim.Now() }
	c.Write(int(total))
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != total {
		t.Fatalf("incomplete under policing: %d", c.Acked())
	}
	goodput := units.RateOf(total, time.Duration(done))
	if goodput > 2500*units.Kbps {
		t.Errorf("goodput %v exceeds the 2 Mbps policer meaningfully", goodput)
	}
	if fwd.Drops == 0 {
		t.Error("policer never dropped")
	}
}
