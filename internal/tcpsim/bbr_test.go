package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
)

// bbrTransfer runs one transfer and returns achieved goodput.
func ccTransfer(t *testing.T, cc Algorithm, loss float64, seed uint64) units.Rate {
	t.Helper()
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	fwd := &netsim.Link{Sim: &sim, Rate: 10 * units.Mbps, Delay: 25 * time.Millisecond}
	rev := &netsim.Link{Sim: &sim, Delay: 25 * time.Millisecond}
	if loss > 0 {
		fwd.LossProb = loss
		fwd.RNG = rng.New(seed)
	}
	c := New(&sim, Config{CC: cc}, fwd, rev)
	total := int64(2000 * 1500)
	var done netsim.Time
	c.OnAllAcked = func() { done = sim.Now() }
	c.Write(int(total))
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != total {
		t.Fatalf("incomplete transfer (cc=%v loss=%v): %d", cc, loss, c.Acked())
	}
	return units.RateOf(total, time.Duration(done))
}

func TestBBRCompletesCleanPath(t *testing.T) {
	g := ccTransfer(t, BBR, 0, 1)
	if g < 6*units.Mbps {
		t.Errorf("BBR clean-path goodput = %v on a 10 Mbps link", g)
	}
	if g > 10*units.Mbps {
		t.Errorf("BBR goodput %v exceeds the link", g)
	}
}

// TestBBRSustainsGoodputUnderLoss is the headline BBR property the
// paper's [20] reports: random (non-congestion) loss barely dents BBR
// while halving-based algorithms collapse.
func TestBBRSustainsGoodputUnderLoss(t *testing.T) {
	const loss = 0.02
	bbrSum, renoSum := units.Rate(0), units.Rate(0)
	const trials = 3
	for s := uint64(0); s < trials; s++ {
		bbrSum += ccTransfer(t, BBR, loss, 100+s)
		renoSum += ccTransfer(t, Reno, loss, 100+s)
	}
	bbr, reno := bbrSum/trials, renoSum/trials
	if bbr < reno {
		t.Errorf("BBR (%v) did not beat Reno (%v) at 2%% loss", bbr, reno)
	}
	if bbr < 2*reno {
		t.Logf("note: BBR advantage modest: %v vs %v", bbr, reno)
	}
	if bbr < 3*units.Mbps {
		t.Errorf("BBR goodput %v too low at 2%% random loss on 10 Mbps", bbr)
	}
}

func TestBBRDoesNotBlowUpQueue(t *testing.T) {
	// With a bounded queue, BBR must still complete and not livelock.
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	fwd := &netsim.Link{Sim: &sim, Rate: 5 * units.Mbps, Delay: 30 * time.Millisecond, QueueLimit: 32}
	rev := &netsim.Link{Sim: &sim, Delay: 30 * time.Millisecond}
	c := New(&sim, Config{CC: BBR}, fwd, rev)
	total := int64(1500 * 1500)
	c.Write(int(total))
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	if c.Acked() != total {
		t.Fatalf("incomplete: %d/%d", c.Acked(), total)
	}
}

func TestBBRWindowTracksBDP(t *testing.T) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	// 10 Mbps × 100 ms RTT ⇒ BDP = 125 kB ≈ 83 packets.
	fwd := &netsim.Link{Sim: &sim, Rate: 10 * units.Mbps, Delay: 50 * time.Millisecond}
	rev := &netsim.Link{Sim: &sim, Delay: 50 * time.Millisecond}
	c := New(&sim, Config{CC: BBR}, fwd, rev)
	c.Write(4000 * 1500)
	var cwndLate int64
	sim.Schedule(6*time.Second, func() { cwndLate = c.Cwnd() })
	if !sim.Run() {
		t.Fatal("no convergence")
	}
	bdp := int64(125_000)
	if cwndLate < bdp/2 || cwndLate > 4*bdp {
		t.Errorf("steady-state BBR cwnd = %d, want within a small factor of BDP %d", cwndLate, bdp)
	}
}
