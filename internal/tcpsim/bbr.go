package tcpsim

import (
	"time"

	"repro/internal/netsim"
)

// BBR is a simplified model-based congestion controller in the spirit
// of Cardwell et al.'s BBR (the paper's [20]): instead of backing off
// on loss, it estimates the path's bottleneck bandwidth and minimum
// round trip and sizes the congestion window to the measured
// bandwidth-delay product. The paper names the congestion-control
// algorithm as one of the determinants of achievable goodput (§3.2),
// and loss-tolerance is why BBR sustains goodput on lossy paths where
// loss-based algorithms collapse.
//
// Simplifications versus real BBRv1: window-based (no pacing), a
// three-phase state machine (startup → drain → steady probing), a
// sliding-maximum bandwidth filter, and RTT-probe handled implicitly by
// the transport's MinRTT tracking.

// bbrState is the controller phase.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbe
)

// bbr holds the controller's estimator state inside Conn.
type bbr struct {
	state bbrState
	// btlBw is the bottleneck bandwidth estimate in bytes/sec (sliding
	// maximum over the last bwWindow samples).
	bwSamples []float64
	// fullBwCount tracks consecutive rounds without ≥25% growth.
	fullBw      float64
	fullBwCount int
	// lastAckAt and ackedSince measure delivery rate between acks.
	lastAckAt  netsim.Time
	ackedSince int64
	roundStart int64 // sndUna at the start of the current round
	probeCycle int
	cycleStamp netsim.Time
}

// bbrBwWindow is the number of delivery-rate samples in the max filter.
const bbrBwWindow = 10

// bbrGainCycle is the steady-state pacing-gain cycle: one probing round,
// one draining round, six cruising rounds.
var bbrGainCycle = []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bbrOnAck updates the model and returns the new congestion window.
func (c *Conn) bbrOnAck(bytesAcked int64) {
	now := c.sim.Now()
	b := &c.bbrS

	// Delivery-rate sample: bytes acknowledged per unit time.
	b.ackedSince += bytesAcked
	if b.lastAckAt == 0 {
		b.lastAckAt = now
	} else if now > b.lastAckAt {
		rate := float64(b.ackedSince) / (now - b.lastAckAt).Seconds()
		b.bwSamples = append(b.bwSamples, rate)
		if len(b.bwSamples) > bbrBwWindow {
			b.bwSamples = b.bwSamples[1:]
		}
		b.lastAckAt = now
		b.ackedSince = 0
	}

	bw := b.maxBw()
	rtProp := c.MinRTT()
	if bw <= 0 || rtProp <= 0 {
		// No model yet: grow like slow start.
		c.cwnd += bytesAcked
		return
	}
	bdp := int64(bw * rtProp.Seconds())

	// Round accounting: a round ends when data sent at round start is
	// acknowledged.
	roundEnded := c.sndUna > b.roundStart
	if roundEnded {
		b.roundStart = c.sndNxt
	}

	switch b.state {
	case bbrStartup:
		// Exponential growth until bandwidth stops increasing ≥25% for
		// three consecutive rounds ("full pipe").
		c.cwnd += bytesAcked
		if roundEnded {
			if bw > b.fullBw*1.25 {
				b.fullBw = bw
				b.fullBwCount = 0
			} else {
				b.fullBwCount++
				if b.fullBwCount >= 3 {
					b.state = bbrDrain
				}
			}
		}
	case bbrDrain:
		// Shrink to the BDP to drain the startup queue.
		c.cwnd = bdp + int64(3*c.cfg.MSS)
		if c.InFlight() <= bdp {
			b.state = bbrProbe
			b.cycleStamp = now
		}
	case bbrProbe:
		// Cycle the window gain around the BDP estimate.
		if now-b.cycleStamp > rtProp {
			b.probeCycle = (b.probeCycle + 1) % len(bbrGainCycle)
			b.cycleStamp = now
		}
		gain := bbrGainCycle[b.probeCycle]
		target := int64(float64(bdp)*gain) + int64(3*c.cfg.MSS)
		// Move toward the target without collapsing below 4 segments.
		c.cwnd = target
	}
	if min := int64(4 * c.cfg.MSS); c.cwnd < min {
		c.cwnd = min
	}
}

// maxBw returns the sliding-maximum bandwidth estimate (bytes/sec).
func (b *bbr) maxBw() float64 {
	max := 0.0
	for _, s := range b.bwSamples {
		if s > max {
			max = s
		}
	}
	return max
}

// bbrOnLoss is BBR's loss response: none, beyond bounding the window to
// the model (loss is not a congestion signal for BBR).
func (c *Conn) bbrOnLoss() {
	b := &c.bbrS
	bw := b.maxBw()
	rtProp := c.MinRTT()
	if bw > 0 && rtProp > 0 {
		bdp := int64(bw * rtProp.Seconds())
		limit := 2*bdp + int64(3*c.cfg.MSS)
		if c.cwnd > limit {
			c.cwnd = limit
		}
	}
}

// bbrMinRTTProbeInterval would schedule RTT probes in a full
// implementation; the transport's windowless MinRTT tracking plays that
// role here.
const bbrMinRTTProbeInterval = 10 * time.Second
