package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRateOf(t *testing.T) {
	tests := []struct {
		name  string
		bytes int64
		d     time.Duration
		want  Rate
	}{
		{"one KB per second", 1000, time.Second, 8 * Kbps},
		{"fig4 txn1: 2 packets in 60ms", 2 * 1500, 60 * time.Millisecond, Rate(0.4 * 1e6)},
		{"fig4 txn2: 24 packets in 120ms", 24 * 1500, 120 * time.Millisecond, Rate(2.4 * 1e6)},
		{"fig4 txn3: 14 packets in 60ms", 14 * 1500, 60 * time.Millisecond, Rate(2.8 * 1e6)},
		{"zero duration", 1000, 0, 0},
		{"negative duration", 1000, -time.Second, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := RateOf(tt.bytes, tt.d)
			if math.Abs(float64(got-tt.want)) > 1 {
				t.Errorf("RateOf(%d, %v) = %v, want %v", tt.bytes, tt.d, got, tt.want)
			}
		})
	}
}

func TestHDGoodputConstant(t *testing.T) {
	if HDGoodput.Mbps() != 2.5 {
		t.Errorf("HDGoodput = %v Mbps, want 2.5", HDGoodput.Mbps())
	}
}

func TestTimeForInvertsBytesIn(t *testing.T) {
	f := func(kb uint16, mbpsTenths uint8) bool {
		nbytes := int64(kb)*1000 + 1
		r := Rate(float64(mbpsTenths)/10+0.1) * Rate(1e6)
		d := r.TimeFor(nbytes)
		back := r.BytesIn(d)
		// Truncation may lose up to a handful of bytes.
		return back <= nbytes && nbytes-back <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeForNonPositiveRate(t *testing.T) {
	if d := Rate(0).TimeFor(1000); d < time.Duration(1<<61) {
		t.Errorf("zero rate should yield huge duration, got %v", d)
	}
	if d := Rate(-5).TimeFor(1000); d < time.Duration(1<<61) {
		t.Errorf("negative rate should yield huge duration, got %v", d)
	}
}

func TestBytesInNonPositive(t *testing.T) {
	if got := Rate(1e6).BytesIn(-time.Second); got != 0 {
		t.Errorf("BytesIn negative duration = %d, want 0", got)
	}
	if got := Rate(-1).BytesIn(time.Second); got != 0 {
		t.Errorf("BytesIn negative rate = %d, want 0", got)
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		r    Rate
		want string
	}{
		{2.5 * Mbps, "2.50Mbps"},
		{1 * Gbps, "1.00Gbps"},
		{500 * Kbps, "500.00Kbps"},
		{12 * BitPerSecond, "12bps"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Rate(%v).String() = %q, want %q", float64(tt.r), got, tt.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		b    ByteSize
		want string
	}{
		{512, "512B"},
		{3 * KB, "3.00KB"},
		{19 * KB, "19.00KB"},
		{2 * MB, "2.00MB"},
		{5 * GB, "5.00GB"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(tt.b), got, tt.want)
		}
	}
}

func TestPackets(t *testing.T) {
	tests := []struct {
		bytes int64
		mss   int
		want  int
	}{
		{0, 1500, 0},
		{-10, 1500, 0},
		{1, 1500, 1},
		{1500, 1500, 1},
		{1501, 1500, 2},
		{36000, 1500, 24},
		{100, 0, 1}, // mss defaults
	}
	for _, tt := range tests {
		if got := Packets(tt.bytes, tt.mss); got != tt.want {
			t.Errorf("Packets(%d, %d) = %d, want %d", tt.bytes, tt.mss, got, tt.want)
		}
	}
}

func TestPacketsProperty(t *testing.T) {
	f := func(n uint32) bool {
		p := Packets(int64(n), 1500)
		return int64(p)*1500 >= int64(n) && (p == 0 || int64(p-1)*1500 < int64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
