// Package units provides the small value types shared across the
// measurement pipeline: data rates, byte counts, and helpers for
// converting between bytes, packets, and durations.
//
// Rates are represented in bits per second as a float64-backed type so
// that goodput arithmetic (bytes over a duration) stays exact enough for
// the thresholds the methodology uses (the paper's HD target is 2.5 Mbps).
package units

import (
	"fmt"
	"time"
)

// Rate is a data rate in bits per second.
type Rate float64

// Common rate units.
const (
	BitPerSecond Rate = 1
	Kbps              = 1e3 * BitPerSecond
	Mbps              = 1e6 * BitPerSecond
	Gbps              = 1e9 * BitPerSecond
)

// HDGoodput is the paper's target goodput: the minimum bitrate required
// to stream HD video (§3.2.1).
const HDGoodput = 2.5 * Mbps

// RateOf returns the rate achieved by transferring n bytes in d.
// It returns 0 if d is not positive.
func RateOf(nbytes int64, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(nbytes) * 8 / d.Seconds())
}

// BytesIn returns the number of bytes delivered at rate r over d,
// truncated to an integer byte count.
func (r Rate) BytesIn(d time.Duration) int64 {
	if r <= 0 || d <= 0 {
		return 0
	}
	return int64(float64(r) / 8 * d.Seconds())
}

// TimeFor returns how long transferring n bytes takes at rate r.
// It returns a very large duration for non-positive rates.
func (r Rate) TimeFor(nbytes int64) time.Duration {
	if r <= 0 {
		return time.Duration(1<<62 - 1)
	}
	sec := float64(nbytes) * 8 / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// Mbps reports the rate in megabits per second.
func (r Rate) Mbps() float64 { return float64(r) / 1e6 }

// String renders the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/1e9)
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/1e6)
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}

// ByteSize is a byte count with human-readable formatting.
type ByteSize int64

// Common byte sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
)

// String renders the size with an adaptive unit.
func (b ByteSize) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/1e9)
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/1e6)
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// DefaultMSS is the maximum segment size assumed throughout the
// methodology and simulators (the paper's examples use 1500-byte packets;
// we model the TCP payload portion).
const DefaultMSS = 1500

// PacketHeaderBytes approximates per-packet TCP/IP header overhead for
// serialization-time accounting.
const PacketHeaderBytes = 40

// ByteOverheadFor returns the total header bytes added when payload is
// split into MSS-sized packets.
func ByteOverheadFor(payload int64, mss int) int64 {
	return int64(Packets(payload, mss)) * PacketHeaderBytes
}

// Packets returns the number of MSS-sized packets needed for n bytes.
func Packets(nbytes int64, mss int) int {
	if mss <= 0 {
		mss = DefaultMSS
	}
	if nbytes <= 0 {
		return 0
	}
	return int((nbytes + int64(mss) - 1) / int64(mss))
}
