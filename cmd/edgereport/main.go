// Command edgereport runs the full measurement study on a synthetic
// world and prints every reproduced table and figure: the §2.3 traffic
// characterisation (Figures 1–3), the §4 global performance snapshot
// (Figures 6–7) with the naive-goodput ablation, §5 degradation
// (Figure 8, Table 1), and §6 routing opportunity (Figure 9, Tables 1–2,
// Figure 10).
//
// Usage:
//
//	edgereport [-seed N] [-groups N] [-days N] [-spw N] [-in dataset] [-deagg] [-cdf]
//	           [-from D] [-to D] [-country CC,CC] [-pop POP,POP]
//	           [-workers N] [-progress] [-metrics-addr host:port]
//
// -in accepts either a JSON-lines file from `edgesim` or a columnar
// segment-store directory from `edgesim -format seg` / `segcat`; the
// format is auto-detected. -from/-to/-country/-pop restrict the
// analysis to a slice of the dataset — on a segment store the filter is
// pushed down to the manifest, so whole segments outside the range are
// never read (the segstore_bytes_pruned gauge on -metrics-addr shows
// how much I/O the filter saved); on JSONL every line is still decoded
// and the same row predicate applied, so both formats render the same
// report byte for byte.
//
// The defaults (120 groups × 5 days) run in a minute or two on a laptop.
// -workers (default GOMAXPROCS) runs the sharded concurrent pipeline —
// generation or dataset decoding fans out to a worker pool feeding
// hash-partitioned aggregation shards, and the analyses run in parallel
// once the shards merge; the report is byte-identical to -workers 1 on
// the same seed or dataset. -cdf additionally dumps the raw CDF series
// behind Figures 8 and 9 for plotting. -progress reports pipeline
// throughput and per-stage timings to stderr while the study runs;
// -metrics-addr serves /metrics, /debug/vars and /debug/pprof — the
// pipeline_queue_depth{stage=...} gauges expose live shard-queue
// occupancy — for introspection of long runs.
//
// -fault-plan injects deterministic failures (see internal/faults) into
// the study pipeline: collector-sink faults retried with backoff,
// poisoned group batches quarantined instead of failing the run, PoP
// outages suppressed at the source. The degraded report carries a
// coverage section accounting every lost sample, and is byte-identical
// across -workers counts for the same seed and plan. -fail-fast aborts
// on the first unrecoverable fault instead. SIGINT/SIGTERM cancel the
// study cleanly (no report is written); a second signal forces an
// immediate exit.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/sample"
	"repro/internal/segstore"
	"repro/internal/sigctl"
	"repro/internal/study"
	"repro/internal/trace"
	"repro/internal/world"
)

// traceBufCap bounds the flight-recorder rings for CLI runs; rings grow
// lazily, so the bound costs nothing until a run actually emits that
// many events on one goroutine.
const traceBufCap = 1 << 20

// exitIfInterrupted maps a cancelled study to the conventional SIGINT
// exit: no partial report is ever written (the analyses need the whole
// dataset), so the operator gets a notice instead of half a table.
func exitIfInterrupted(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "edgereport: interrupted — study abandoned, no report written")
		os.Exit(130)
	}
}

func main() {
	var (
		seed        = flag.Uint64("seed", 42, "world seed (same seed, same dataset)")
		groups      = flag.Int("groups", 120, "number of user groups")
		days        = flag.Int("days", 5, "dataset length in days (paper: 10)")
		spw         = flag.Float64("spw", 110, "mean sampled sessions per group per 15-minute window")
		in          = flag.String("in", "", "analyse an existing dataset (a JSONL file or a seg directory from edgesim; auto-detected) instead of generating one")
		from        = flag.Duration("from", 0, "with -in: only analyse sessions starting at or after this dataset offset (e.g. 24h)")
		to          = flag.Duration("to", 0, "with -in: only analyse sessions starting before this dataset offset (0 = end)")
		country     = flag.String("country", "", "with -in: only analyse these countries (comma-separated ISO codes)")
		pop         = flag.String("pop", "", "with -in: only analyse these PoPs (comma-separated)")
		cdf         = flag.Bool("cdf", false, "also dump raw CDF series for Figures 8 and 9")
		deagg       = flag.Bool("deagg", false, "also run the §3.3 prefix-deaggregation experiment")
		workers     = flag.Int("workers", pipeline.DefaultWorkers(), "pipeline workers and aggregation shards (1 = sequential)")
		progress    = flag.Bool("progress", false, "report study progress to stderr every 2s")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		faultPlan   = flag.String("fault-plan", "", "deterministic fault-injection plan (key=value;... — see internal/faults; '' or 'none' disables)")
		failFast    = flag.Bool("fail-fast", false, "abort on the first unrecoverable injected fault instead of degrading")
		tracePath   = flag.String("trace", "", "record a deterministic flight trace of the study to this file (timing sidecar lands next to it); inspect with edgetrace")
		rowOracle   = flag.Bool("row-oracle", false, "with a seg -in: aggregate row-at-a-time instead of the columnar batch path (verification oracle; the report must be byte-identical)")
	)
	flag.Parse()

	plan, err := faults.ParsePlan(*faultPlan)
	if err != nil {
		log.Fatalf("edgereport: -fault-plan: %v", err)
	}
	if plan != nil && *deagg {
		log.Fatal("edgereport: -fault-plan is not supported with -deagg (the deaggregation experiment is a clean-world comparison)")
	}
	if *tracePath != "" && *deagg {
		log.Fatal("edgereport: -trace is not supported with -deagg (the deaggregation experiment bypasses the traced pipeline)")
	}
	filter, err := segstore.ParseFilter(*from, *to, *country, *pop)
	if err != nil {
		log.Fatalf("edgereport: %v", err)
	}
	if filter != nil && *in == "" {
		log.Fatal("edgereport: -from/-to/-country/-pop filter an existing dataset; pass one with -in")
	}

	ctx, stop := sigctl.Context(context.Background(),
		"edgereport: second interrupt — forcing exit; no report written")
	defer stop()

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgereport: metrics server: %v", err)
			}
		}()
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(reg, os.Stderr, 2*time.Second)
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(*seed)
		rec.SetBufCap(traceBufCap)
	}
	flushTrace := func() {
		if rec == nil {
			return
		}
		if err := rec.WriteFile(*tracePath); err != nil {
			log.Printf("edgereport: writing trace: %v", err)
			return
		}
		note := ""
		if n := rec.Dropped(); n > 0 {
			note = fmt.Sprintf(" (ring overwrote %d events; the trace is a suffix)", n)
		}
		fmt.Fprintf(os.Stderr, "edgereport: trace written to %s%s\n", *tracePath, note)
	}

	opt := study.Options{Workers: *workers, Reg: reg, Plan: plan, FailFast: *failFast, Filter: filter, Trace: rec, RowOracle: *rowOracle}
	var res *study.Results
	var deagResult *struct {
		covLoss, varRed float64
		baseG, fineG    int
	}
	if *deagg && *in == "" {
		// The deaggregation experiment re-buckets the same world two ways;
		// it stays on the sequential path regardless of -workers.
		r, d := study.RunDeaggregation(world.Config{
			Seed: *seed, Groups: *groups, Days: *days, SessionsPerGroupWindow: *spw,
		})
		res = r
		deagResult = &struct {
			covLoss, varRed float64
			baseG, fineG    int
		}{d.CoverageLoss(), d.VariabilityReduction(), d.BaseGroups, d.FineGroups}
	} else if *in != "" && segstore.IsDataset(*in) {
		res, err = study.FromSegments(ctx, *in, opt)
		if err != nil {
			exitIfInterrupted(err)
			log.Fatalf("edgereport: reading %s: %v", *in, err)
		}
	} else if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			log.Fatalf("edgereport: %v", ferr)
		}
		defer f.Close()
		// ReadCounter puts bytes/s on the progress line next to the
		// decode stage's samples/s; the goal gauge lets the progress line
		// project an ETA from the read rate.
		if fi, serr := f.Stat(); serr == nil {
			reg.Gauge("study_read_goal_bytes").Set(float64(fi.Size()))
		}
		br := study.ReadCounter(bufio.NewReaderSize(f, 1<<20), reg)
		// A fault plan or trace forces the streaming path even at
		// -workers 1: its guard surfaces (sink retry, quarantine) live
		// there, and one code path per plan keeps the report — and the
		// trace — worker-count independent.
		if *workers > 1 || plan != nil || rec != nil {
			res, err = study.FromStream(ctx, br, opt)
		} else {
			res, err = study.FromSamplesOpt(sample.NewReader(br), opt)
		}
		if err != nil {
			exitIfInterrupted(err)
			log.Fatalf("edgereport: reading %s: %v", *in, err)
		}
	} else {
		res, err = study.RunCtx(ctx, world.Config{
			Seed:                   *seed,
			Groups:                 *groups,
			Days:                   *days,
			SessionsPerGroupWindow: *spw,
		}, opt)
		if err != nil {
			exitIfInterrupted(err)
			log.Fatalf("edgereport: %v", err)
		}
	}
	stopProgress()
	flushTrace()
	res.WriteReport(os.Stdout)
	if deagResult != nil {
		fmt.Printf("== §3.3 deaggregation experiment ==\ngroups %d→%d, coverage loss %.0f%%, variability reduction %.0f%% (paper: large loss, minimal reduction)\n\n",
			deagResult.baseG, deagResult.fineG, deagResult.covLoss*100, deagResult.varRed*100)
	}

	if *cdf {
		fmt.Println("== Raw CDF series ==")
		deg, degLo, degHi := res.DegMinRTT.CDF()
		report.CDF(os.Stdout, "fig8-minrtt-degradation-ms", deg, 41)
		report.CDF(os.Stdout, "fig8-minrtt-degradation-ci-lo", degLo, 41)
		report.CDF(os.Stdout, "fig8-minrtt-degradation-ci-hi", degHi, 41)
		opp, oppLo, oppHi := res.OppMinRTT.CDF()
		report.CDF(os.Stdout, "fig9-minrtt-opportunity-ms", opp, 41)
		report.CDF(os.Stdout, "fig9-minrtt-opportunity-ci-lo", oppLo, 41)
		report.CDF(os.Stdout, "fig9-minrtt-opportunity-ci-hi", oppHi, 41)
	}
}
