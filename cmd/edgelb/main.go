// Command edgelb runs the measurement load balancer (internal/lb) as a
// standalone server: it serves synthetic objects over HTTP/1.1
// ("GET /object?bytes=N"), samples sessions at the configured rate
// (§2.2.2), instruments them through Linux TCP_INFO, and logs one
// HDratio session report per sampled connection at close — the live
// counterpart of the paper's Proxygen instrumentation.
//
// Usage:
//
//	edgelb [-listen 127.0.0.1:8080] [-rate 1.0] [-target 2.5e6]
//	       [-metrics-addr 127.0.0.1:8081]
//
// Exercise it with any HTTP client:
//
//	curl -o /dev/null 'http://127.0.0.1:8080/object?bytes=1250000'
//
// The metrics listener serves the server's own health: request-latency
// histograms, session/byte counters, and TCP_INFO capture failures on
// /metrics (Prometheus text), plus /debug/vars and /debug/pprof.
package main

import (
	"flag"
	"log"
	"net"

	"repro/internal/lb"
	"repro/internal/obs"
	"repro/internal/proxygen"
	"repro/internal/units"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "listen address")
		rate        = flag.Float64("rate", 1.0, "session sampling rate (0..1]")
		target      = flag.Float64("target", float64(units.HDGoodput), "target goodput in bits/sec")
		metricsAddr = flag.String("metrics-addr", "127.0.0.1:8081", "serve /metrics, /debug/vars and /debug/pprof on this address ('' to disable)")
		quiet       = flag.Bool("quiet", false, "suppress per-session report logging")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("edgelb: %v", err)
	}
	log.Printf("edgelb: serving on %s (sampling %.0f%% of sessions, target %v)",
		l.Addr(), *rate*100, units.Rate(*target))

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgelb: metrics server: %v", err)
			}
		}()
		log.Printf("edgelb: metrics on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
	}

	hd := reg.Digest("edgelb_session_hdratio")
	srv := &lb.Server{
		Sampler: proxygen.Sampler{Rate: *rate, Salt: 0x5eed},
		Target:  units.Rate(*target),
		OnReport: func(r lb.SessionReport) {
			if v := r.HDratio(); v == v { // skip NaN (nothing tested)
				hd.Observe(v)
			}
			if *quiet {
				return
			}
			log.Printf("session %s: minrtt=%v bytes=%d txns=%d tested=%d achieved=%d hdratio=%.2f",
				r.RemoteAddr, r.MinRTT, r.BytesServed, len(r.Transactions),
				r.Outcome.Tested, r.Outcome.AchievedCount, r.HDratio())
		},
	}
	srv.Instrument(reg)
	log.Fatal(srv.Serve(l))
}
