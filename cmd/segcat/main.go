// Command segcat converts measurement datasets between the two on-disk
// formats: JSON lines (the edgesim default) and the columnar segment
// store (internal/segstore). The direction is auto-detected from -in:
// a segment-store directory extracts to JSONL, anything else converts
// to a segment store. Sample order is preserved exactly both ways, so
// jsonl → seg → jsonl is byte-identical.
//
// Usage:
//
//	segcat -in ds.jsonl -o ds.seg [-seg-span 24h] [-max-rows 65536]
//	segcat -in ds.seg -o ds.jsonl [-workers N]
//	segcat -in ds.seg -o - -from 24h -to 48h -country US
//
// Extraction accepts -from/-to/-country/-pop: the filter is pushed down
// to the manifest, so segments wholly outside the slice are never read.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pipeline"
	"repro/internal/segstore"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset: a JSONL file or a segment-store directory (required)")
		out     = flag.String("o", "", "output path: a directory for jsonl→seg, a file or '-' for seg→jsonl (required)")
		span    = flag.Duration("seg-span", segstore.DefaultSegmentSpan, "jsonl→seg: window range per segment")
		maxRows = flag.Int("max-rows", segstore.DefaultMaxRows, "jsonl→seg: maximum rows per segment")
		workers = flag.Int("workers", pipeline.DefaultWorkers(), "seg→jsonl: parallel segment decoders")
		from    = flag.Duration("from", 0, "seg→jsonl: only extract sessions starting at or after this dataset offset")
		to      = flag.Duration("to", 0, "seg→jsonl: only extract sessions starting before this dataset offset (0 = end)")
		country = flag.String("country", "", "seg→jsonl: only extract these countries (comma-separated ISO codes)")
		pop     = flag.String("pop", "", "seg→jsonl: only extract these PoPs (comma-separated)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	filter, err := segstore.ParseFilter(*from, *to, *country, *pop)
	if err != nil {
		log.Fatalf("segcat: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	if segstore.IsDataset(*in) {
		extract(ctx, *in, *out, *workers, filter, start)
		return
	}
	if filter != nil {
		log.Fatal("segcat: -from/-to/-country/-pop only apply when extracting a segment store (conversion keeps every row)")
	}
	convert(*in, *out, *span, *maxRows, start)
}

// convert packs a JSONL file into a segment store. The store commits
// after every segment, so conversion is resumable in principle — but
// origin strings pin the source path, keeping two sources out of one
// dataset.
func convert(in, out string, span time.Duration, maxRows int, start time.Time) {
	f, err := os.Open(in)
	if err != nil {
		log.Fatalf("segcat: %v", err)
	}
	defer f.Close()
	w, err := segstore.Create(out, "segcat "+in)
	if err != nil {
		log.Fatalf("segcat: %v", err)
	}
	segs, samples, err := segstore.ConvertJSONL(bufio.NewReaderSize(f, 1<<20), w, segstore.ConvertOptions{Span: span, MaxRows: maxRows})
	if err != nil {
		log.Fatalf("segcat: converting %s: %v", in, err)
	}
	var inBytes int64
	if fi, err := f.Stat(); err == nil {
		inBytes = fi.Size()
	}
	outBytes := w.Manifest().TotalBytes()
	ratio := "?"
	if outBytes > 0 && inBytes > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(inBytes)/float64(outBytes))
	}
	fmt.Fprintf(os.Stderr, "segcat: packed %d samples into %d segments — %d → %d bytes (%s smaller) in %v\n",
		samples, segs, inBytes, outBytes, ratio, time.Since(start).Round(time.Millisecond))
}

// extract streams a segment store (or a filtered slice of it) back out
// as JSON lines.
func extract(ctx context.Context, in, out string, workers int, filter *segstore.Filter, start time.Time) {
	r, err := segstore.Open(in)
	if err != nil {
		log.Fatalf("segcat: %v", err)
	}
	f := os.Stdout
	if out != "-" {
		f, err = os.Create(out)
		if err != nil {
			log.Fatalf("segcat: %v", err)
		}
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	n, err := segstore.WriteJSONL(ctx, r, bw, workers, filter)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if f != os.Stdout {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		log.Fatalf("segcat: extracting %s: %v", in, err)
	}
	fmt.Fprintf(os.Stderr, "segcat: extracted %d samples in %v\n", n, time.Since(start).Round(time.Millisecond))
}
