// Command edgemerged is the central merge tier for a multi-PoP fleet:
// it listens for shipping connections from edgepopd processes, spools
// accepted segments into an ordinary segstore dataset under the same
// commit protocol the PoPs use locally, and deduplicates replayed
// shipments idempotently by (origin, segment ID, content hash).
//
// Usage:
//
//	edgemerged -o spool -listen ADDR -expect-pops N [-network tcp|unix]
//	           [-credit N] [-origin STR] [-metrics-addr host:port]
//	           [-trace file]
//
// The spool directory ends byte-identical to the dataset a single
// `edgesim -format seg` run with the fleet's flags would have written:
// manifests render sorted by segment ID and blobs are pure functions
// of their sample slices, so arrival order, PoP count, duplicate
// deliveries, and merger restarts (the spool manifest is resumed, its
// committed hashes reseeding the dedup table) leave no byte behind.
// Run edgereport over the spool to fold it into the global report.
//
// The merger exits 0 once -expect-pops distinct PoPs have completed
// their DONE handshake, or on SIGINT/SIGTERM (everything committed so
// far is durable; restart to keep receiving).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/ship"
	"repro/internal/sigctl"
	"repro/internal/trace"
)

const traceBufCap = 1 << 20

func main() {
	var (
		out         = flag.String("o", "", "spool dataset directory (required; resumed if it already holds a dataset)")
		listen      = flag.String("listen", "", "address to listen on (host:port, or a unix socket path; required)")
		network     = flag.String("network", "", "listen network: tcp or unix (default: unix when -listen contains a path separator)")
		expectPops  = flag.Int("expect-pops", 1, "exit once this many distinct PoPs complete their DONE handshake")
		credit      = flag.Int("credit", 4, "credit window granted to each shipper (max unacked shipments in flight)")
		origin      = flag.String("origin", "", "pin the spool origin; refuse shippers that disagree (default: adopt the first shipper's)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		tracePath   = flag.String("trace", "", "record a deterministic flight trace of the merge to this file")
		seed        = flag.Uint64("seed", 1, "trace seed (must match the fleet's for edgetrace diff)")
	)
	flag.Parse()

	if *out == "" {
		log.Fatal("edgemerged: -o is required (the spool dataset directory)")
	}
	if *listen == "" {
		log.Fatal("edgemerged: -listen is required")
	}
	if *expectPops < 1 {
		log.Fatalf("edgemerged: -expect-pops %d out of range", *expectPops)
	}
	net := *network
	if net == "" {
		if strings.ContainsRune(*listen, os.PathSeparator) {
			net = "unix"
		} else {
			net = "tcp"
		}
	}

	ctx, stop := sigctl.Context(context.Background(),
		"edgemerged: second interrupt — forcing exit; the spool manifest holds the last committed state")
	defer stop()

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgemerged: metrics server: %v", err)
			}
		}()
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(*seed)
		rec.SetBufCap(traceBufCap)
	}

	m, err := ship.NewMerger(ship.MergerOptions{
		SpoolDir: *out, Origin: *origin,
		ExpectPoPs: *expectPops, Credit: *credit,
		Reg: reg, Rec: rec,
	})
	if err != nil {
		log.Fatalf("edgemerged: %v", err)
	}

	start := time.Now()
	serveErr := m.ListenAndServe(ctx, net, *listen)
	m.EmitTrace()
	if rec != nil {
		if werr := rec.WriteFile(*tracePath); werr != nil {
			log.Printf("edgemerged: writing trace: %v", werr)
		}
	}
	st := m.Stats()
	if serveErr != nil && !errors.Is(serveErr, context.Canceled) {
		log.Fatalf("edgemerged: %v (%d shipments committed and durable; restart to keep receiving)", serveErr, st.Shipments)
	}
	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "edgemerged: interrupted — %d shipments committed (%d deduped); the spool is durable, restart to keep receiving\n",
			st.Shipments, st.Dedup)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "edgemerged: merged %d shipments (%d segments+tombstones deduped, %d tombstones) from %d PoPs over %d connections in %s; %d bytes spooled\n",
		st.Shipments, st.Dedup, st.Tombstones, st.PopsDone, st.Conns, time.Since(start).Round(time.Millisecond), st.Bytes)
	if st.HashConflicts > 0 {
		fmt.Fprintf(os.Stderr, "edgemerged: WARNING — %d hash conflicts refused; the fleet shipped disagreeing bytes for the same slot\n", st.HashConflicts)
	}
}
