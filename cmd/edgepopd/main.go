// Command edgepopd runs one PoP of the distributed collection fleet:
// it generates its share of the world into a local segment dataset
// (the same pure per-group pipeline edgesim uses, so the fleet's
// datasets reassemble byte-identically), then ships every committed
// segment to the central merger (cmd/edgemerged) over a
// length-prefixed, CRC-framed stream.
//
// Usage:
//
//	edgepopd -merger ADDR -pop I -pops N [-seed N] [-groups N] [-days N]
//	         [-spw N] [-o dir] [-workers N] [-fault-plan SPEC]
//	         [-ship-fault-plan SPEC] [-credit N] [-ack-batch N] [-fail-fast]
//	         [-progress] [-metrics-addr host:port] [-trace file]
//
// The fleet invariant: N edgepopd processes with -pops N and -pop
// 0..N-1 (same seed/groups/days/spw/fault-plan) ship exactly the
// segments a single `edgesim -format seg` run would write, and the
// merger's spool directory ends byte-identical to it — under any
// -ship-fault-plan, at any worker count, including kill-and-restart of
// a PoP at any instant: generation resumes from the manifest,
// shipping resumes from the committed-vs-acked watermark (ACKS.json),
// and the merger deduplicates replayed shipments by (origin, segment
// ID, content hash).
//
// -fault-plan shapes the data (it is part of the dataset origin, like
// edgesim's); -ship-fault-plan is wire-only chaos — drops, delays,
// truncations, duplicate deliveries on the shipping connection — and
// never appears in the origin, because it must never change a dataset
// byte.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/seggen"
	"repro/internal/ship"
	"repro/internal/sigctl"
	"repro/internal/trace"
	"repro/internal/world"
)

const traceBufCap = 1 << 20

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "world seed (must match the fleet)")
		groups      = flag.Int("groups", 300, "number of user groups (must match the fleet)")
		days        = flag.Int("days", 10, "dataset length in days (must match the fleet)")
		spw         = flag.Float64("spw", 8, "mean sampled sessions per group per window (must match the fleet)")
		out         = flag.String("o", "", "local segment dataset directory (required)")
		pop         = flag.Int("pop", 0, "this PoP's index in the fleet (0-based)")
		pops        = flag.Int("pops", 1, "fleet size")
		merger      = flag.String("merger", "", "merger address (host:port, or a unix socket path; required unless -no-ship)")
		network     = flag.String("network", "", "merger network: tcp or unix (default: unix when -merger contains a path separator)")
		credit      = flag.Int("credit", 4, "max unacknowledged shipments in flight (merger may grant less)")
		ackBatch    = flag.Int("ack-batch", 1, "group-commit the durable ack log every N acked slots (1 = commit per ack); a crash mid-batch only re-ships, never re-acks")
		noShip      = flag.Bool("no-ship", false, "generate only; skip the shipping phase")
		workers     = flag.Int("workers", pipeline.DefaultWorkers(), "concurrent generate/encode workers (1 = sequential)")
		progress    = flag.Bool("progress", false, "report progress to stderr every 2s")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		faultPlan   = flag.String("fault-plan", "", "deterministic generation fault plan (shapes the dataset; part of its origin)")
		shipPlan    = flag.String("ship-fault-plan", "", "deterministic wire fault plan for the shipping phase (ship-drop/ship-dup/ship-trunc/ship-delay; never changes dataset bytes)")
		failFast    = flag.Bool("fail-fast", false, "abort on the first unrecoverable injected generation fault instead of degrading")
		tracePath   = flag.String("trace", "", "record a deterministic flight trace of the run to this file")
	)
	flag.Parse()

	if *out == "" {
		log.Fatal("edgepopd: -o is required (the PoP's local dataset directory)")
	}
	if *pops < 1 || *pop < 0 || *pop >= *pops {
		log.Fatalf("edgepopd: -pop %d -pops %d out of range", *pop, *pops)
	}
	if *merger == "" && !*noShip {
		log.Fatal("edgepopd: -merger is required (or pass -no-ship)")
	}
	plan, err := faults.ParsePlan(*faultPlan)
	if err != nil {
		log.Fatalf("edgepopd: -fault-plan: %v", err)
	}
	wirePlan, err := faults.ParsePlan(*shipPlan)
	if err != nil {
		log.Fatalf("edgepopd: -ship-fault-plan: %v", err)
	}

	ctx, stop := sigctl.Context(context.Background(),
		"edgepopd: second interrupt — forcing exit; manifest and ack log hold the last committed state")
	defer stop()

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgepopd: metrics server: %v", err)
			}
		}()
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(reg, os.Stderr, 2*time.Second)
	}
	defer stopProgress()

	w := world.New(world.Config{
		Seed:                   *seed,
		Groups:                 *groups,
		Days:                   *days,
		SessionsPerGroupWindow: *spw,
	})
	w.Instrument(reg)

	inj := faults.NewInjector(plan, *seed)
	inj.Instrument(reg)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	// The wire injector shares the registry (its faults_injected_total
	// surface is "ship") but draws from the ship plan's own seed mix.
	wireInj := faults.NewInjector(wirePlan, *seed)
	wireInj.Instrument(reg)

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(*seed)
		rec.SetBufCap(traceBufCap)
		w.Rec = rec
	}
	flushTrace := func() {
		if rec == nil {
			return
		}
		if err := rec.WriteFile(*tracePath); err != nil {
			log.Printf("edgepopd: writing trace: %v", err)
		}
	}

	// The origin is the canonical edgesim origin for the same flags: the
	// fleet's shipped segments must land in a spool whose manifest is
	// byte-identical to the single-process dataset's, and the origin is
	// part of those bytes. The PoP index deliberately stays out of it.
	spec := ""
	if inj != nil {
		spec = inj.Plan().Spec()
	}
	origin := fmt.Sprintf("edgesim seed=%d groups=%d days=%d spw=%g plan=%q", *seed, *groups, *days, *spw, spec)

	owned := seggen.OwnedGroups(w, *pop, *pops)
	res, runErr := seggen.Run(ctx, seggen.Options{
		World: w, Dir: *out, Origin: origin, Reg: reg,
		Workers: *workers, Injector: inj, FailFast: *failFast, Rec: rec,
		Groups: owned,
	})
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		flushTrace()
		log.Fatalf("edgepopd: generate: %v", runErr)
	}
	if runErr != nil { // interrupted; everything committed is durable
		flushTrace()
		fmt.Fprintf(os.Stderr, "edgepopd: interrupted — %d samples committed this run; rerun with the same flags to resume generation and shipping\n", res.Written)
		os.Exit(130)
	}
	msg := fmt.Sprintf("edgepopd: pop %d/%d committed %d samples across %d of %d groups",
		*pop, *pops, res.Written, len(owned), *groups)
	if res.Resumed > 0 {
		msg += fmt.Sprintf("; %d groups already committed by a previous run", res.Resumed)
	}
	fmt.Fprintln(os.Stderr, msg)
	if cov := res.Coverage; cov != nil && cov.Degraded() {
		fmt.Fprintf(os.Stderr, "edgepopd: DEGRADED under fault plan %q — lost %d samples; losses are tombstoned in the manifest and ship as such\n",
			cov.Spec, cov.SamplesLost())
	}

	if *noShip {
		flushTrace()
		return
	}

	st, shipErr := ship.Ship(ctx, ship.ShipperOptions{
		Dir: *out, Network: *network, Addr: *merger,
		PoP: *pop, Pops: *pops, Credit: *credit, AckBatch: *ackBatch,
		Injector: wireInj, Reg: reg, Rec: rec,
	})
	flushTrace()
	if shipErr != nil && !errors.Is(shipErr, context.Canceled) {
		log.Fatalf("edgepopd: ship: %v (%d slots acked and durable; rerun to resume)", shipErr, st.Shipped+st.AlreadyAcked)
	}
	if shipErr != nil {
		fmt.Fprintf(os.Stderr, "edgepopd: interrupted — %d slots acked (%d already acked before this run); rerun with the same flags to resume shipping\n",
			st.Shipped, st.AlreadyAcked)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "edgepopd: shipped %d slots (%d segments, %d tombstones, %d already acked) in %d bytes; %d retries, %d reconnects, %d duplicates injected\n",
		st.Shipped, st.Segments, st.Tombs, st.AlreadyAcked, st.Bytes, st.Retries, st.Reconnects, st.DupsInjected)
}
