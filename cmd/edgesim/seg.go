package main

import (
	"context"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/seggen"
	"repro/internal/trace"
	"repro/internal/world"
)

// chunksPerGroup reports the segment-ID chunk count per group; the
// pipeline itself lives in internal/seggen so cmd/edgepopd can run the
// same generation for a PoP-owned subset of groups.
func chunksPerGroup(cfg world.Config) int {
	return seggen.ChunksPerGroup(cfg)
}

// runSeg generates the whole world's dataset into the segment store at
// dir via seggen.Run (see that package for the pipeline and resume
// semantics). Returns the collector totals, samples committed this run,
// groups resumed from a previous run, the degradation ledger, and the
// first pipeline error.
func runSeg(ctx context.Context, w *world.World, dir, origin string, reg *obs.Registry, workers int, inj *faults.Injector, failFast bool, rec *trace.Recorder) (collector.Stats, int, int, *faults.Coverage, error) {
	res, err := seggen.Run(ctx, seggen.Options{
		World: w, Dir: dir, Origin: origin, Reg: reg,
		Workers: workers, Injector: inj, FailFast: failFast, Rec: rec,
	})
	return res.Stats, res.Written, res.Resumed, res.Coverage, err
}
