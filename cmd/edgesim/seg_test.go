package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/segstore"
	"repro/internal/world"
)

func segCfg() world.Config {
	// Days=2 so every group spans two segment chunks and the ID scheme
	// (group*chunksPerGroup + chunk) is actually exercised.
	return world.Config{Seed: 5, Groups: 24, Days: 2, SessionsPerGroupWindow: 4}
}

func segDataset(t *testing.T, ctx context.Context, dir string, workers int, spec string) (collector.Stats, int, int, *faults.Coverage, error) {
	t.Helper()
	plan, err := faults.ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	cfg := segCfg()
	w := world.New(cfg)
	inj := faults.NewInjector(plan, cfg.Seed)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	return runSeg(ctx, w, dir, "test "+spec, obs.NewRegistry(), workers, inj, false, nil)
}

// dirBytes snapshots every file in a dataset directory.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func sameDir(t *testing.T, got, want map[string][]byte, label string) {
	t.Helper()
	for name, data := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing file %s", label, name)
			continue
		}
		if !bytes.Equal(g, data) {
			t.Errorf("%s: file %s differs (%d vs %d bytes)", label, name, len(g), len(data))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected file %s", label, name)
		}
	}
}

// The seg dataset must not depend on the worker count — with or
// without a fault plan (tombstones included).
func TestSegDatasetByteIdenticalAcrossWorkers(t *testing.T) {
	for _, spec := range []string{"", "seed=13;sink-transient=0.15;sink-permanent=0.08;truncate=0.2;corrupt=0.08;retries=4;retry-base=20us"} {
		base := filepath.Join(t.TempDir(), "base.seg")
		_, _, _, baseCov, err := segDataset(t, context.Background(), base, 1, spec)
		if err != nil {
			t.Fatalf("workers=1 plan=%q: %v", spec, err)
		}
		if spec != "" && (baseCov == nil || !baseCov.Degraded()) {
			t.Fatalf("plan %q did not degrade the run", spec)
		}
		want := dirBytes(t, base)
		for _, workers := range []int{2, 4} {
			dir := filepath.Join(t.TempDir(), "w.seg")
			if _, _, _, _, err := segDataset(t, context.Background(), dir, workers, spec); err != nil {
				t.Fatalf("workers=%d plan=%q: %v", workers, spec, err)
			}
			sameDir(t, dirBytes(t, dir), want, spec)
		}
	}
}

// Scanning a natively written seg dataset back out as JSONL must give
// exactly the bytes `edgesim` would have written as JSONL: both paths
// share the collector's hosting filter and (group, window) order.
func TestSegDatasetRoundTripsToJSONLDataset(t *testing.T) {
	cfg := segCfg()
	var jsonl bytes.Buffer
	bw := bufio.NewWriter(&jsonl)
	if _, _, _, err := run(context.Background(), world.New(cfg), bw, obs.NewRegistry(), 4, nil, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ds.seg")
	if _, _, _, _, err := segDataset(t, context.Background(), dir, 4, ""); err != nil {
		t.Fatal(err)
	}
	r, err := segstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	var back bytes.Buffer
	if _, err := segstore.WriteJSONL(context.Background(), r, &back, 4, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), jsonl.Bytes()) {
		t.Fatalf("seg→jsonl (%d bytes) differs from native jsonl (%d bytes)", back.Len(), jsonl.Len())
	}
	if man := r.Manifest(); int64(jsonl.Len()) < 3*man.TotalBytes() {
		t.Logf("note: compression ratio %.2fx (jsonl %d bytes, seg %d bytes)", float64(jsonl.Len())/float64(man.TotalBytes()), jsonl.Len(), man.TotalBytes())
	}
}

// An interrupt mid-run must leave a readable manifest, and rerunning
// with the same flags must resume and converge on a directory
// byte-identical to an uninterrupted run's — wherever the interrupt
// landed.
func TestSegInterruptResumeByteIdentical(t *testing.T) {
	ref := filepath.Join(t.TempDir(), "ref.seg")
	if _, _, _, _, err := segDataset(t, context.Background(), ref, 2, ""); err != nil {
		t.Fatal(err)
	}
	want := dirBytes(t, ref)

	dir := filepath.Join(t.TempDir(), "ds.seg")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as a few segments have landed — mid-run, like a
	// SIGINT. The property under test is interrupt-point-agnostic.
	go func() {
		for {
			if ents, err := os.ReadDir(dir); err == nil && len(ents) >= 4 {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	_, _, _, _, err := segDataset(t, ctx, dir, 2, "")
	if err == nil {
		t.Skip("run finished before the cancel landed; nothing interrupted")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run failed with %v, want context.Canceled", err)
	}

	// The manifest must be readable right now, mid-dataset.
	r, err := segstore.Open(dir)
	if err != nil {
		t.Fatalf("interrupted dataset is not readable: %v", err)
	}
	partial := r.Manifest().TotalSamples()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with the same flags: only missing groups regenerate, and
	// the final directory matches the uninterrupted reference exactly.
	_, _, resumed, _, err := segDataset(t, context.Background(), dir, 2, "")
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if partial > 0 && resumed == 0 {
		t.Errorf("resume regenerated everything despite %d committed samples", partial)
	}
	sameDir(t, dirBytes(t, dir), want, "resumed")
}

// Resuming with different flags must be refused, not interleaved.
func TestSegResumeRefusesDifferentOrigin(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds.seg")
	if _, _, _, _, err := segDataset(t, context.Background(), dir, 1, ""); err != nil {
		t.Fatal(err)
	}
	cfg := segCfg()
	w := world.New(cfg)
	_, _, _, _, err := runSeg(context.Background(), w, dir, "test seed=999", obs.NewRegistry(), 1, nil, false, nil)
	if err == nil {
		t.Fatal("runSeg extended a dataset written under a different origin")
	}
}
