package main

import (
	"bufio"
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/world"
)

func chaosDataset(t *testing.T, workers int, spec string) ([]byte, collector.Stats, int, *faults.Coverage) {
	t.Helper()
	plan, err := faults.ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	cfg := world.Config{Seed: 5, Groups: 24, Days: 1, SessionsPerGroupWindow: 6}
	w := world.New(cfg)
	inj := faults.NewInjector(plan, cfg.Seed)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	st, written, cov, err := run(context.Background(), w, bw, obs.NewRegistry(), workers, inj, false, nil)
	if err != nil {
		t.Fatalf("run(workers=%d, plan=%q): %v", workers, spec, err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st, written, cov
}

// The degraded dataset must not depend on the worker count: same seed,
// same plan, byte-identical output and identical degradation ledger.
func TestChaosDatasetByteIdenticalAcrossWorkers(t *testing.T) {
	const spec = "seed=13;sink-transient=0.15;sink-permanent=0.04;truncate=0.2;corrupt=0.08;" +
		"fail-group=3;outage=fra:10-30;retries=4;retry-base=20us"
	base, _, baseWritten, baseCov := chaosDataset(t, 1, spec)
	if baseCov == nil || !baseCov.Degraded() {
		t.Fatalf("plan %q did not degrade the run: %+v", spec, baseCov)
	}
	if baseCov.TransientRecovered == 0 {
		t.Fatal("plan injected no recovered transients — the retry surface went unexercised")
	}
	if baseCov.SamplesLostOutage == 0 {
		t.Fatal("the fra outage suppressed nothing — the PoP surface went unexercised")
	}
	for _, workers := range []int{2, 4} {
		got, _, written, cov := chaosDataset(t, workers, spec)
		if !bytes.Equal(got, base) {
			t.Fatalf("workers=%d dataset differs from workers=1 (%d vs %d bytes)", workers, len(got), len(base))
		}
		if written != baseWritten {
			t.Errorf("workers=%d wrote %d samples, workers=1 wrote %d", workers, written, baseWritten)
		}
		a, b := *cov, *baseCov
		a.Quarantined, b.Quarantined = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d coverage differs: %+v vs %+v", workers, a, b)
		}
		if len(cov.Quarantined) != len(baseCov.Quarantined) {
			t.Fatalf("workers=%d quarantined %d groups, workers=1 quarantined %d", workers, len(cov.Quarantined), len(baseCov.Quarantined))
		}
		for i := range cov.Quarantined {
			if cov.Quarantined[i] != baseCov.Quarantined[i] {
				t.Errorf("quarantine entry %d differs: %+v vs %+v", i, cov.Quarantined[i], baseCov.Quarantined[i])
			}
		}
	}
}

// With write faults only, every sample is either written or accounted
// as dropped — written + dropped equals the clean run's accepted count.
func TestChaosWriteFaultAccountingIsExact(t *testing.T) {
	clean, cleanSt, cleanWritten, _ := chaosDataset(t, 4, "")
	if cleanWritten != cleanSt.Accepted {
		t.Fatalf("clean run wrote %d of %d accepted samples", cleanWritten, cleanSt.Accepted)
	}
	_, st, written, cov := chaosDataset(t, 4, "seed=3;sink-transient=0.2;sink-permanent=0.2;retries=3;retry-base=10us")
	if st.Accepted != cleanSt.Accepted {
		t.Fatalf("write faults changed the collector's view: accepted %d vs %d", st.Accepted, cleanSt.Accepted)
	}
	if cov.SamplesLostDropped == 0 {
		t.Fatal("plan injected no permanent write faults; pick a hotter plan")
	}
	if written+cov.SamplesLostDropped != cleanSt.Accepted {
		t.Fatalf("accounting leak: %d written + %d dropped != %d accepted", written, cov.SamplesLostDropped, cleanSt.Accepted)
	}
	if clean == nil {
		t.Fatal("unreachable")
	}
}

// With no plan the chaos machinery must be fully dormant: the parallel
// batch path emits the same bytes as the sequential writer path.
func TestNoPlanMatchesSequentialDataset(t *testing.T) {
	seqBytes, _, _, seqCov := chaosDataset(t, 1, "")
	parBytes, _, _, parCov := chaosDataset(t, 4, "")
	if seqCov != nil || parCov != nil {
		t.Fatal("coverage ledger materialised without a fault plan")
	}
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatal("parallel dataset differs from sequential with no plan")
	}
	if !strings.Contains(string(seqBytes[:120]), "\"") {
		t.Fatalf("dataset does not look like JSONL: %q", seqBytes[:120])
	}
}
