// Command edgesim generates the synthetic measurement dataset — the
// stand-in for the paper's 10-day production capture (§2.2.4) — and
// writes it as JSON lines, one sampled HTTP session per line, after the
// collector's hosting-provider filter.
//
// Usage:
//
//	edgesim [-seed N] [-groups N] [-days N] [-spw N] [-o dataset.jsonl]
//
// A 10-day, 300-group dataset is a few million sessions and a few GB of
// JSON; scale -groups/-days/-spw to taste. The output feeds external
// tooling; cmd/edgereport regenerates and analyses in-process instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/collector"
	"repro/internal/sample"
	"repro/internal/world"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 1, "world seed")
		groups = flag.Int("groups", 300, "number of user groups")
		days   = flag.Int("days", 10, "dataset length in days")
		spw    = flag.Float64("spw", 8, "mean sampled sessions per group per window")
		out    = flag.String("o", "-", "output path ('-' for stdout)")
	)
	flag.Parse()

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatalf("edgesim: %v", err)
		}
		defer f.Close()
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	defer bw.Flush()

	w := world.New(world.Config{
		Seed:                   *seed,
		Groups:                 *groups,
		Days:                   *days,
		SessionsPerGroupWindow: *spw,
	})
	writer := sample.NewWriter(bw)
	var writeErr error
	col := collector.New(collector.WriterSink(writer, func(err error) { writeErr = err }))
	w.Generate(col.Offer)
	if writeErr != nil {
		log.Fatalf("edgesim: write: %v", writeErr)
	}
	st := col.Stats()
	fmt.Fprintf(os.Stderr, "edgesim: wrote %d samples (%d filtered as hosting/VPN) across %d groups × %d windows\n",
		st.Accepted, st.FilteredHosting, *groups, w.Cfg.Windows())
}
