// Command edgesim generates the synthetic measurement dataset — the
// stand-in for the paper's 10-day production capture (§2.2.4) — and
// writes it as JSON lines, one sampled HTTP session per line, after the
// collector's hosting-provider filter.
//
// Usage:
//
//	edgesim [-seed N] [-groups N] [-days N] [-spw N] [-o dataset.jsonl]
//	        [-workers N] [-progress] [-metrics-addr host:port]
//
// A 10-day, 300-group dataset is a few million sessions and a few GB of
// JSON; scale -groups/-days/-spw to taste. -workers (default GOMAXPROCS)
// generates and encodes groups concurrently while a single writer stage
// keeps the output in deterministic group order, so the dataset bytes do
// not depend on the worker count. -progress reports sessions per second
// and per-stage wall time to stderr while the run grinds; -metrics-addr
// additionally serves /metrics (Prometheus text), /debug/vars, and
// /debug/pprof — including pipeline_queue_depth{stage="write"} for the
// encode→write queue. The output feeds external tooling; cmd/edgereport
// regenerates and analyses in-process instead.
//
// SIGINT/SIGTERM cancel the pipeline cleanly: in-flight groups are
// abandoned, the contiguous prefix already ordered is flushed, and the
// process exits with a valid (truncated) JSONL dataset rather than a
// torn file. A second SIGINT/SIGTERM skips the orderly drain and exits
// immediately, leaving whatever bytes already reached the file.
//
// -fault-plan injects deterministic failures (see internal/faults) at
// the generator, batch, and writer surfaces: PoP outages suppress
// windows at the source, batch faults truncate or drop whole group
// batches, and write faults fail the ordered write stage — transient
// streaks are absorbed by retry with backoff, permanent ones quarantine
// the group's batch (or abort the run under -fail-fast). The same seed
// and plan yield a byte-identical degraded dataset at any -workers
// count; the losses are accounted on stderr when the run ends.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/sigctl"
	"repro/internal/trace"
	"repro/internal/world"
)

// traceBufCap is the flight-recorder ring bound for CLI runs: large
// enough that a full chaos dataset keeps every event (drops void the
// byte-identity guarantee and edgetrace warns about them), small enough
// to bound memory on a runaway run. Rings grow lazily, so quiet runs
// never pay it.
const traceBufCap = 1 << 20

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "world seed")
		groups      = flag.Int("groups", 300, "number of user groups")
		days        = flag.Int("days", 10, "dataset length in days")
		spw         = flag.Float64("spw", 8, "mean sampled sessions per group per window")
		out         = flag.String("o", "-", "output path ('-' for stdout; a directory with -format seg)")
		format      = flag.String("format", "jsonl", "dataset format: jsonl (a stream of JSON lines) or seg (a columnar segment-store directory)")
		workers     = flag.Int("workers", pipeline.DefaultWorkers(), "concurrent generate/encode workers (1 = sequential)")
		progress    = flag.Bool("progress", false, "report generation progress to stderr every 2s")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		faultPlan   = flag.String("fault-plan", "", "deterministic fault-injection plan (key=value;... — see internal/faults; '' or 'none' disables)")
		failFast    = flag.Bool("fail-fast", false, "abort on the first unrecoverable injected fault instead of degrading")
		tracePath   = flag.String("trace", "", "record a deterministic flight trace of the run to this file (timing sidecar lands next to it); inspect with edgetrace")
	)
	flag.Parse()

	plan, err := faults.ParsePlan(*faultPlan)
	if err != nil {
		log.Fatalf("edgesim: -fault-plan: %v", err)
	}

	if *format != "jsonl" && *format != "seg" {
		log.Fatalf("edgesim: -format %q (want jsonl or seg)", *format)
	}
	if *format == "seg" && *out == "-" {
		log.Fatal("edgesim: -format seg writes a dataset directory; pass one with -o")
	}

	notice := "edgesim: second interrupt — forcing exit; the dataset is partial and may end mid-line"
	if *format == "seg" {
		notice = "edgesim: second interrupt — forcing exit; the manifest holds the last committed state"
	}
	ctx, stop := sigctl.Context(context.Background(), notice)
	defer stop()

	var f *os.File
	if *format == "seg" {
		f = nil // the segment store manages its own files
	} else if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatalf("edgesim: %v", err)
		}
	}

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgesim: metrics server: %v", err)
			}
		}()
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(reg, os.Stderr, 2*time.Second)
	}

	w := world.New(world.Config{
		Seed:                   *seed,
		Groups:                 *groups,
		Days:                   *days,
		SessionsPerGroupWindow: *spw,
	})
	w.Instrument(reg)

	inj := faults.NewInjector(plan, *seed)
	inj.Instrument(reg)
	if inj != nil {
		w.PoPDown = inj.Outage
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(*seed)
		rec.SetBufCap(traceBufCap)
		w.Rec = rec
	}
	flushTrace := func() {
		if rec == nil {
			return
		}
		if err := rec.WriteFile(*tracePath); err != nil {
			log.Printf("edgesim: writing trace: %v", err)
			return
		}
		note := ""
		if n := rec.Dropped(); n > 0 {
			note = fmt.Sprintf(" (ring overwrote %d events; the trace is a suffix)", n)
		}
		fmt.Fprintf(os.Stderr, "edgesim: trace written to %s%s\n", *tracePath, note)
	}

	if *format == "seg" {
		spec := ""
		if inj != nil {
			spec = inj.Plan().Spec()
		}
		// The origin pins everything that shapes the dataset bytes; resume
		// with different flags is refused rather than silently interleaved.
		origin := fmt.Sprintf("edgesim seed=%d groups=%d days=%d spw=%g plan=%q", *seed, *groups, *days, *spw, spec)
		st, written, resumed, cov, runErr := runSeg(ctx, w, *out, origin, reg, *workers, inj, *failFast, rec)
		stopProgress()
		flushTrace()
		if runErr != nil && !errors.Is(runErr, context.Canceled) {
			log.Fatalf("edgesim: %v", runErr)
		}
		if runErr != nil { // interrupted; everything committed is durable
			fmt.Fprintf(os.Stderr, "edgesim: interrupted — %d samples committed this run; the manifest is intact, rerun with the same flags to resume\n", written)
			os.Exit(130)
		}
		msg := fmt.Sprintf("edgesim: committed %d samples (%d filtered as hosting/VPN) across %d groups × %d windows",
			written, st.FilteredHosting, *groups, w.Cfg.Windows())
		if resumed > 0 {
			msg += fmt.Sprintf("; %d groups already committed by a previous run", resumed)
		}
		fmt.Fprintln(os.Stderr, msg)
		reportCoverage(cov)
		return
	}

	bw := bufio.NewWriterSize(f, 1<<20)
	st, written, cov, runErr := run(ctx, w, bw, reg, *workers, inj, *failFast, rec)
	stopProgress()
	flushTrace()

	// Flush and close unconditionally: on cancellation the contiguous
	// prefix already written is still a valid dataset, and a full disk
	// can surface only here. A pipeline error takes precedence over the
	// flush error it usually caused (bufio keeps the first write failure
	// sticky, so both fire together on e.g. a full disk).
	flushErr := bw.Flush()
	var closeErr error
	if f != os.Stdout {
		closeErr = f.Close()
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		if st.DroppedAfterError > 0 {
			log.Fatalf("edgesim: %v (%d samples dropped after the error)", runErr, st.DroppedAfterError)
		}
		log.Fatalf("edgesim: %v", runErr)
	}
	if flushErr != nil {
		log.Fatalf("edgesim: flush: %v", flushErr)
	}
	if closeErr != nil {
		log.Fatalf("edgesim: close: %v", closeErr)
	}
	if runErr != nil { // interrupted, and the prefix flushed cleanly
		fmt.Fprintf(os.Stderr, "edgesim: interrupted — dataset truncated after %d samples (prefix is valid JSONL)\n", written)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "edgesim: wrote %d samples (%d filtered as hosting/VPN) across %d groups × %d windows\n",
		written, st.FilteredHosting, *groups, w.Cfg.Windows())
	reportCoverage(cov)
}

// reportCoverage prints the degradation ledger of a chaos run (no-op
// without a fault plan): degraded results must be labeled, never silent.
func reportCoverage(cov *faults.Coverage) {
	if cov == nil {
		return
	}
	if cov.Degraded() {
		fmt.Fprintf(os.Stderr, "edgesim: DEGRADED under fault plan %q — lost %d samples (outage %d, truncated %d, dropped %d); %d group batches quarantined; %d retries spent, %d transient faults recovered\n",
			cov.Spec, cov.SamplesLost(), cov.SamplesLostOutage, cov.SamplesLostTruncated, cov.SamplesLostDropped,
			len(cov.Quarantined), cov.RetriesSpent, cov.TransientRecovered)
	} else {
		fmt.Fprintf(os.Stderr, "edgesim: fault plan %q injected no data loss (%d retries spent, %d transient faults recovered)\n",
			cov.Spec, cov.RetriesSpent, cov.TransientRecovered)
	}
}

// run generates the dataset into bw and returns the collector totals,
// the number of samples actually written, the degradation ledger (nil
// without a fault plan), and the first pipeline error (context.Canceled
// after SIGINT). Whatever it returns, bytes already handed to bw form
// whole JSON lines in group order.
func run(ctx context.Context, w *world.World, bw *bufio.Writer, reg *obs.Registry, workers int, inj *faults.Injector, failFast bool, rec *trace.Recorder) (collector.Stats, int, *faults.Coverage, error) {
	// Chaos and traced runs always take the batch path, even at
	// -workers 1: the fault surfaces (batch fate, write retry) live
	// there, and keeping one code path per plan is what makes the worker
	// count irrelevant to the output bytes — and to the trace bytes.
	if workers <= 1 && inj == nil && rec == nil {
		col := collector.New(collector.WriterSink(sample.NewWriter(bw)))
		col.Instrument(reg)
		err := w.GenerateCtx(ctx, 1, col.Offer)
		if serr := col.Err(); serr != nil {
			err = serr // the write failure is the root cause
		}
		st := col.Stats()
		return st, st.Accepted, nil, err
	}

	// Parallel mode: workers generate and encode whole groups
	// concurrently; a single writer stage restores group order so the
	// output is byte-identical to -workers 1. Each batch filters through
	// its own collector (WriterSink is single-threaded) and the per-batch
	// stats merge into the run totals.
	type encBatch struct {
		group   int
		data    []byte
		samples int
		// fate carries the batch surface's verdict to the single-owner
		// writer goroutine, which emits the trace events for it — the
		// generation callback runs on many workers and may not share a
		// trace ring.
		fate     string
		fateLost int
	}
	var (
		mu      sync.Mutex
		total   collector.Stats
		cov     faults.Coverage
		written int
	)
	if inj != nil {
		cov.Spec = inj.Plan().Spec()
		cov.FailFast = failFast
	}
	encSpan := reg.Span(obs.L("edgesim_stage_seconds", "stage", "encode"), "edgesim")
	writeSpan := reg.Span(obs.L("edgesim_stage_seconds", "stage", "write"), "edgesim")

	g := pipeline.NewGroup(ctx)
	g.Trace(rec)
	enc := pipeline.NewStream[encBatch](workers)
	enc.Instrument(reg, "write")
	enc.Observe(rec, "write")
	tb := rec.Buf() // owned by the ordered writer goroutine below
	// encode filters and encodes one surviving batch and hands it (plus
	// its batch-surface fate, if any) to the ordered writer.
	encode := func(ctx context.Context, group int, samples []sample.Sample, fate string, fateLost int) error {
		sp := encSpan.Start()
		var buf bytes.Buffer
		c := collector.New(collector.WriterSink(sample.NewWriter(&buf)))
		c.Instrument(reg)
		for _, s := range samples {
			c.Offer(s)
		}
		sp.End()
		if err := c.Err(); err != nil {
			return err
		}
		st := c.Stats()
		mu.Lock()
		total = total.Merge(st)
		mu.Unlock()
		return enc.Send(ctx, encBatch{group: group, data: buf.Bytes(), samples: st.Accepted, fate: fate, fateLost: fateLost})
	}
	g.Go(func(ctx context.Context) error {
		defer enc.Close()
		return w.GenerateBatchesUnordered(ctx, workers, func(b world.Batch) error {
			samples := b.Samples
			if b.Lost > 0 { // PoP outage suppressed windows at the source
				mu.Lock()
				cov.SamplesLostOutage += b.Lost
				mu.Unlock()
			}
			switch f := inj.BatchFault(b.Group); f.Kind {
			case faults.BatchOK:
			case faults.BatchTruncate:
				keep := len(samples) - int(float64(len(samples))*f.Frac)
				mu.Lock()
				cov.BatchesTruncated++
				cov.SamplesLostTruncated += len(samples) - keep
				mu.Unlock()
				lost := len(samples) - keep
				samples = samples[:keep]
				return encode(ctx, b.Group, samples, f.Kind.String(), lost)
			default: // corrupt or plan-listed failure: the whole batch is gone
				if failFast {
					return fmt.Errorf("group %d batch: %w", b.Group,
						&faults.FaultError{Surface: faults.SurfaceBatch, Key: fmt.Sprintf("world-group-%d", b.Group)})
				}
				mu.Lock()
				cov.GroupsDropped++
				cov.SamplesLostDropped += len(samples)
				cov.Quarantined = append(cov.Quarantined, faults.QuarantinedGroup{
					Key: fmt.Sprintf("world-group-%04d", b.Group), Reason: f.Kind.String(), SamplesLost: len(samples),
				})
				mu.Unlock()
				// Reorder needs a gapless group sequence: send a tombstone.
				return enc.Send(ctx, encBatch{group: b.Group, fate: f.Kind.String(), fateLost: len(samples)})
			}
			return encode(ctx, b.Group, samples, "", 0)
		})
	})
	g.Go(func(ctx context.Context) error {
		return pipeline.Reorder(ctx, enc, func(b encBatch) int { return b.group }, 0, func(b encBatch) error {
			track := trace.GroupTrack(b.group)
			if b.fate != "" && b.fateLost > 0 {
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "batch", Value: int64(b.fateLost), Detail: b.fate,
				})
				if b.fate == faults.BatchTruncate.String() {
					tb.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossTruncated, b.fateLost)
				} else {
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseBatch, Win: -1, Seq: 1,
						Kind: trace.KQuarantine, Stage: "batch", Value: int64(b.fateLost), Detail: b.fate,
					})
					tb.Loss(track, trace.PhaseBatch, -1, 0, "batch", trace.LossDropped, b.fateLost)
				}
			}
			if len(b.data) == 0 { // tombstone for a dropped batch
				return nil
			}
			if f := inj.WriteFault(b.group); !f.None() {
				if f.Permanent {
					if failFast {
						return fmt.Errorf("writing group %d batch: %w", b.group,
							&faults.FaultError{Surface: faults.SurfaceWrite, Key: fmt.Sprintf("world-group-%d", b.group)})
					}
					mu.Lock()
					cov.GroupsDropped++
					cov.SamplesLostDropped += b.samples
					cov.Quarantined = append(cov.Quarantined, faults.QuarantinedGroup{
						Key: fmt.Sprintf("world-group-%04d", b.group), Reason: "permanent write failure", SamplesLost: b.samples,
					})
					mu.Unlock()
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 0,
						Kind: trace.KFault, Stage: "write", Value: int64(b.samples), Detail: "write-permanent",
					})
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 1,
						Kind: trace.KQuarantine, Stage: "write", Value: int64(b.samples), Detail: "permanent write failure",
					})
					tb.Loss(track, trace.PhaseCommit, -1, 0, "write", trace.LossDropped, b.samples)
					return nil
				}
				// Transient streak: retry with backoff until the writer
				// heals, wrapping the real write so its own errors (full
				// disk) still surface as permanent.
				rem := f.Transient
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 0,
					Kind: trace.KFault, Stage: "write", Value: int64(rem), Detail: "write-transient",
				})
				p := inj.Policy(b.group)
				p.OnRetry = func(int, error) {
					mu.Lock()
					cov.RetriesSpent++
					mu.Unlock()
				}
				p = faults.TracedPolicy(p, tb, track, trace.PhaseCommit, -1, 0, "write")
				err := faults.Retry(ctx, p, func() error {
					if rem > 0 {
						rem--
						return &faults.FaultError{Surface: faults.SurfaceWrite,
							Key: fmt.Sprintf("world-group-%d", b.group), Transient: true}
					}
					sp := writeSpan.Start()
					defer sp.End()
					_, werr := bw.Write(b.data)
					return werr
				})
				if err != nil {
					if failFast || !faults.IsTransient(err) {
						return err
					}
					mu.Lock()
					cov.GroupsDropped++
					cov.SamplesLostDropped += b.samples
					cov.Quarantined = append(cov.Quarantined, faults.QuarantinedGroup{
						Key: fmt.Sprintf("world-group-%04d", b.group), Reason: "write retry budget exhausted", SamplesLost: b.samples,
					})
					mu.Unlock()
					tb.Emit(trace.Event{
						Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 1,
						Kind: trace.KQuarantine, Stage: "write", Value: int64(b.samples), Detail: "write retry budget exhausted",
					})
					tb.Loss(track, trace.PhaseCommit, -1, 0, "write", trace.LossDropped, b.samples)
					return nil
				}
				mu.Lock()
				cov.TransientRecovered++
				mu.Unlock()
				inj.Recovered()
				written += b.samples
				tb.Emit(trace.Event{
					Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 2,
					Kind: trace.KCommit, Stage: "write", Value: int64(b.samples),
				})
				return nil
			}
			sp := writeSpan.Start()
			defer sp.End()
			if _, err := bw.Write(b.data); err != nil {
				return err
			}
			written += b.samples
			tb.Emit(trace.Event{
				Track: track, Phase: trace.PhaseCommit, Win: -1, Seq: 2,
				Kind: trace.KCommit, Stage: "write", Value: int64(b.samples),
			})
			return nil
		})
	})
	err := g.Wait()
	mu.Lock()
	st := total
	mu.Unlock()
	if inj == nil {
		return st, written, nil, err
	}
	cov.Finalize()
	if cov.Degraded() {
		inj.MarkDegraded()
	}
	cov.EmitTrace(tb) // writer goroutine has returned; main owns the ring now
	return st, written, &cov, err
}
