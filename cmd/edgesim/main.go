// Command edgesim generates the synthetic measurement dataset — the
// stand-in for the paper's 10-day production capture (§2.2.4) — and
// writes it as JSON lines, one sampled HTTP session per line, after the
// collector's hosting-provider filter.
//
// Usage:
//
//	edgesim [-seed N] [-groups N] [-days N] [-spw N] [-o dataset.jsonl]
//	        [-progress] [-metrics-addr host:port]
//
// A 10-day, 300-group dataset is a few million sessions and a few GB of
// JSON; scale -groups/-days/-spw to taste. -progress reports sessions
// per second and per-stage wall time to stderr while the run grinds;
// -metrics-addr additionally serves /metrics (Prometheus text),
// /debug/vars, and /debug/pprof for live introspection. The output
// feeds external tooling; cmd/edgereport regenerates and analyses
// in-process instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/collector"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/world"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "world seed")
		groups      = flag.Int("groups", 300, "number of user groups")
		days        = flag.Int("days", 10, "dataset length in days")
		spw         = flag.Float64("spw", 8, "mean sampled sessions per group per window")
		out         = flag.String("o", "-", "output path ('-' for stdout)")
		progress    = flag.Bool("progress", false, "report generation progress to stderr every 2s")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatalf("edgesim: %v", err)
		}
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgesim: metrics server: %v", err)
			}
		}()
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(reg, os.Stderr, 2*time.Second)
	}

	w := world.New(world.Config{
		Seed:                   *seed,
		Groups:                 *groups,
		Days:                   *days,
		SessionsPerGroupWindow: *spw,
	})
	w.Instrument(reg)
	col := collector.New(collector.WriterSink(sample.NewWriter(bw)))
	col.Instrument(reg)
	w.Generate(col.Offer)
	stopProgress()
	if err := col.Err(); err != nil {
		st := col.Stats()
		log.Fatalf("edgesim: write: %v (%d samples dropped after the error)", err, st.DroppedAfterError)
	}
	// A full disk can surface only at flush or close; either way the
	// dataset is truncated and the run must fail loudly.
	if err := bw.Flush(); err != nil {
		log.Fatalf("edgesim: flush: %v", err)
	}
	if f != os.Stdout {
		if err := f.Close(); err != nil {
			log.Fatalf("edgesim: close: %v", err)
		}
	}
	st := col.Stats()
	fmt.Fprintf(os.Stderr, "edgesim: wrote %d samples (%d filtered as hosting/VPN) across %d groups × %d windows\n",
		st.Accepted, st.FilteredHosting, *groups, w.Cfg.Windows())
}
