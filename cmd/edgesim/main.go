// Command edgesim generates the synthetic measurement dataset — the
// stand-in for the paper's 10-day production capture (§2.2.4) — and
// writes it as JSON lines, one sampled HTTP session per line, after the
// collector's hosting-provider filter.
//
// Usage:
//
//	edgesim [-seed N] [-groups N] [-days N] [-spw N] [-o dataset.jsonl]
//	        [-workers N] [-progress] [-metrics-addr host:port]
//
// A 10-day, 300-group dataset is a few million sessions and a few GB of
// JSON; scale -groups/-days/-spw to taste. -workers (default GOMAXPROCS)
// generates and encodes groups concurrently while a single writer stage
// keeps the output in deterministic group order, so the dataset bytes do
// not depend on the worker count. -progress reports sessions per second
// and per-stage wall time to stderr while the run grinds; -metrics-addr
// additionally serves /metrics (Prometheus text), /debug/vars, and
// /debug/pprof — including pipeline_queue_depth{stage="write"} for the
// encode→write queue. The output feeds external tooling; cmd/edgereport
// regenerates and analyses in-process instead.
//
// SIGINT/SIGTERM cancel the pipeline cleanly: in-flight groups are
// abandoned, the contiguous prefix already ordered is flushed, and the
// process exits with a valid (truncated) JSONL dataset rather than a
// torn file.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/world"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "world seed")
		groups      = flag.Int("groups", 300, "number of user groups")
		days        = flag.Int("days", 10, "dataset length in days")
		spw         = flag.Float64("spw", 8, "mean sampled sessions per group per window")
		out         = flag.String("o", "-", "output path ('-' for stdout)")
		workers     = flag.Int("workers", pipeline.DefaultWorkers(), "concurrent generate/encode workers (1 = sequential)")
		progress    = flag.Bool("progress", false, "report generation progress to stderr every 2s")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatalf("edgesim: %v", err)
		}
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		go func() {
			if err := reg.ListenAndServe(*metricsAddr); err != nil {
				log.Printf("edgesim: metrics server: %v", err)
			}
		}()
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(reg, os.Stderr, 2*time.Second)
	}

	w := world.New(world.Config{
		Seed:                   *seed,
		Groups:                 *groups,
		Days:                   *days,
		SessionsPerGroupWindow: *spw,
	})
	w.Instrument(reg)

	st, written, runErr := run(ctx, w, bw, reg, *workers)
	stopProgress()

	// Flush and close unconditionally: on cancellation the contiguous
	// prefix already written is still a valid dataset, and a full disk
	// can surface only here. A pipeline error takes precedence over the
	// flush error it usually caused (bufio keeps the first write failure
	// sticky, so both fire together on e.g. a full disk).
	flushErr := bw.Flush()
	var closeErr error
	if f != os.Stdout {
		closeErr = f.Close()
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		if st.DroppedAfterError > 0 {
			log.Fatalf("edgesim: %v (%d samples dropped after the error)", runErr, st.DroppedAfterError)
		}
		log.Fatalf("edgesim: %v", runErr)
	}
	if flushErr != nil {
		log.Fatalf("edgesim: flush: %v", flushErr)
	}
	if closeErr != nil {
		log.Fatalf("edgesim: close: %v", closeErr)
	}
	if runErr != nil { // interrupted, and the prefix flushed cleanly
		fmt.Fprintf(os.Stderr, "edgesim: interrupted — dataset truncated after %d samples (prefix is valid JSONL)\n", written)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "edgesim: wrote %d samples (%d filtered as hosting/VPN) across %d groups × %d windows\n",
		st.Accepted, st.FilteredHosting, *groups, w.Cfg.Windows())
}

// run generates the dataset into bw and returns the collector totals,
// the number of samples actually written, and the first pipeline error
// (context.Canceled after SIGINT). Whatever it returns, bytes already
// handed to bw form whole JSON lines in group order.
func run(ctx context.Context, w *world.World, bw *bufio.Writer, reg *obs.Registry, workers int) (collector.Stats, int, error) {
	if workers <= 1 {
		col := collector.New(collector.WriterSink(sample.NewWriter(bw)))
		col.Instrument(reg)
		err := w.GenerateCtx(ctx, 1, col.Offer)
		if serr := col.Err(); serr != nil {
			err = serr // the write failure is the root cause
		}
		st := col.Stats()
		return st, st.Accepted, err
	}

	// Parallel mode: workers generate and encode whole groups
	// concurrently; a single writer stage restores group order so the
	// output is byte-identical to -workers 1. Each batch filters through
	// its own collector (WriterSink is single-threaded) and the per-batch
	// stats merge into the run totals.
	type encBatch struct {
		group   int
		data    []byte
		samples int
	}
	var (
		mu      sync.Mutex
		total   collector.Stats
		written int
	)
	encSpan := reg.Span(obs.L("edgesim_stage_seconds", "stage", "encode"), "edgesim")
	writeSpan := reg.Span(obs.L("edgesim_stage_seconds", "stage", "write"), "edgesim")

	g := pipeline.NewGroup(ctx)
	enc := pipeline.NewStream[encBatch](workers)
	enc.Instrument(reg, "write")
	g.Go(func(ctx context.Context) error {
		defer enc.Close()
		return w.GenerateBatchesUnordered(ctx, workers, func(b world.Batch) error {
			sp := encSpan.Start()
			var buf bytes.Buffer
			c := collector.New(collector.WriterSink(sample.NewWriter(&buf)))
			c.Instrument(reg)
			for _, s := range b.Samples {
				c.Offer(s)
			}
			sp.End()
			if err := c.Err(); err != nil {
				return err
			}
			st := c.Stats()
			mu.Lock()
			total = total.Merge(st)
			mu.Unlock()
			return enc.Send(ctx, encBatch{group: b.Group, data: buf.Bytes(), samples: st.Accepted})
		})
	})
	g.Go(func(ctx context.Context) error {
		return pipeline.Reorder(ctx, enc, func(b encBatch) int { return b.group }, 0, func(b encBatch) error {
			sp := writeSpan.Start()
			defer sp.End()
			if _, err := bw.Write(b.data); err != nil {
				return err
			}
			written += b.samples
			return nil
		})
	})
	err := g.Wait()
	mu.Lock()
	st := total
	mu.Unlock()
	return st, written, err
}
