package main

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/segstore"
)

// TestMain runs edgesim's end-to-end tests (segment write + reread
// equivalence, traced chaos datasets) under segstore leak-check mode
// and asserts zero outstanding pooled batches afterwards — the CLI
// paths must uphold the same ownership protocol the study pipeline
// does.
func TestMain(m *testing.M) {
	segstore.SetLeakCheck(true)
	code := m.Run()
	if out, dbl := segstore.LeakStats(); code == 0 && (out != 0 || dbl != 0) {
		fmt.Fprintf(os.Stderr, "segstore leak check: %d outstanding batches, %d double releases after edgesim tests\n", out, dbl)
		code = 1
	}
	os.Exit(code)
}
