package main

import (
	"bufio"
	"bytes"
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/world"
)

// tracedDataset runs the batch pipeline traced and returns the dataset
// bytes plus the deterministic trace bytes.
func tracedDataset(t *testing.T, workers int, spec string) ([]byte, []byte) {
	t.Helper()
	var plan *faults.Plan
	if spec != "" {
		p, err := faults.ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		plan = p
	}
	cfg := world.Config{Seed: 5, Groups: 24, Days: 1, SessionsPerGroupWindow: 6}
	w := world.New(cfg)
	inj := faults.NewInjector(plan, cfg.Seed)
	if inj != nil {
		w.PoPDown = inj.Outage
	}
	rec := trace.New(cfg.Seed)
	w.Rec = rec
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, _, _, err := run(context.Background(), w, bw, obs.NewRegistry(), workers, inj, false, rec); err != nil {
		t.Fatalf("run(workers=%d): %v", workers, err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var tr bytes.Buffer
	if err := rec.Flush(&tr); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("workers=%d: trace ring overwrote %d events", workers, rec.Dropped())
	}
	return buf.Bytes(), tr.Bytes()
}

// The edgesim trace — spans, batch fates, write retries, commits — is
// byte-identical at any -workers count, chaos or not, and tracing does
// not change one dataset byte.
func TestEdgesimTraceWorkerInvariant(t *testing.T) {
	const spec = "seed=13;sink-transient=0.15;sink-permanent=0.04;truncate=0.2;corrupt=0.08;" +
		"fail-group=3;outage=fra:10-30;retries=4;retry-base=20us"
	for _, plan := range []string{"", spec} {
		name := "plain"
		if plan != "" {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			wantData, wantTrace := tracedDataset(t, 1, plan)
			if len(wantTrace) == 0 {
				t.Fatal("empty trace")
			}
			for _, workers := range []int{2, 4} {
				data, tr := tracedDataset(t, workers, plan)
				if !bytes.Equal(tr, wantTrace) {
					t.Errorf("workers=%d trace differs from workers=1", workers)
				}
				if !bytes.Equal(data, wantData) {
					t.Errorf("workers=%d dataset differs from workers=1 under tracing", workers)
				}
			}
			untraced, _, _, _ := chaosDataset(t, 4, plan)
			if !bytes.Equal(untraced, wantData) {
				t.Error("tracing changed the dataset bytes")
			}
		})
	}
}

// A chaos edgesim trace must tell the coverage ledger's story exactly:
// per-track loss events partition into the same cause totals.
func TestEdgesimTraceReconciles(t *testing.T) {
	const spec = "seed=13;sink-transient=0.15;sink-permanent=0.04;truncate=0.2;corrupt=0.08;" +
		"fail-group=3;outage=fra:10-30;retries=4;retry-base=20us"
	_, raw := tracedDataset(t, 4, spec)
	f, err := trace.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep := trace.Causes(f)
	if !rep.Reconciled() {
		for _, c := range rep.Checks {
			if !c.OK() {
				t.Errorf("cause %q: traced %d, ledger %d", c.Loss, c.Traced, c.Ledger)
			}
		}
		t.Fatal("edgesim trace does not reconcile with its coverage ledger")
	}
	if rep.Sender == 0 {
		t.Error("outage losses missing from the trace")
	}
	if rep.Network == 0 {
		t.Error("batch/write losses missing from the trace")
	}
}
