// Command hdvalidate reproduces the paper's §3.2.3 validation: it sweeps
// 15,840 configurations of a single TCP transfer through a simulated
// bottleneck (bandwidth 0.5–5 Mbps, RTT 20–200 ms, initial cwnd 1–50
// packets, size 1–500 packets), measures each transfer exactly as the
// production instrumentation would, and checks that the methodology's
// goodput estimate never overestimates the bottleneck rate.
//
// The paper reports a 99th-percentile relative error of 0.066 and zero
// overestimates on NS3; this command prints the same summary for the
// netsim/tcpsim substrate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/validate"
)

func main() {
	var (
		stride  = flag.Int("stride", 1, "subsample the grid (1 = full 15,840 sweep)")
		verbose = flag.Bool("v", false, "print every overestimating configuration")
	)
	flag.Parse()

	params := validate.DefaultSweep()
	fmt.Printf("sweeping %d configurations (stride %d)...\n", params.Count(), *stride)
	all := validate.SweepParallel(params, *stride, runtime.NumCPU())

	s := validate.Summarise(all)
	fmt.Printf("measured:      %d/%d\n", s.Measured, s.Total)
	fmt.Printf("testable:      %d (Gtestable > bottleneck)\n", s.Testable)
	fmt.Printf("overestimates: %d\n", s.Overestimates)
	fmt.Printf("rel. error:    median=%.4f p99=%.4f (paper: p99=0.066)\n", s.MedianRelError(), s.P99RelError())

	if s.Overestimates > 0 {
		if *verbose {
			for _, r := range all {
				if r.Err == nil && r.Testable && r.RelError < 0 {
					fmt.Printf("  OVER bw=%v rtt=%v iw=%d size=%d est=%v rel=%.4f\n",
						r.Bottleneck, r.RTT, r.InitCwnd, r.SizePkts, r.Estimated, r.RelError)
				}
			}
		}
		os.Exit(1)
	}
	fmt.Println("validation passed: the estimate never overestimates the bottleneck")
}
