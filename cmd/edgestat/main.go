// Command edgestat inspects a measurement dataset (a JSON-lines file or
// a columnar segment-store directory from cmd/edgesim — the format is
// auto-detected): it prints a per-user-group roll-up — traffic,
// coverage, medians, baseline and worst degradation — sorted by
// traffic, the view an operator would use to find the groups worth
// investigating.
//
// Usage:
//
//	edgesim -groups 60 -days 2 -o ds.jsonl
//	edgestat -in ds.jsonl [-top 20]
//	edgesim -groups 60 -days 2 -format seg -o ds.seg
//	edgestat -in ds.seg -from 24h -country US,BR
//
// -from/-to/-country/-pop restrict the roll-up to a slice of the
// dataset; on a segment store the filter prunes whole segments via the
// manifest before any data is read.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/report"
	"repro/internal/sample"
	"repro/internal/segstore"
)

func main() {
	var (
		in      = flag.String("in", "", "dataset path (a JSONL file or a seg directory; required)")
		top     = flag.Int("top", 20, "number of groups to print (0 = all)")
		from    = flag.Duration("from", 0, "only count sessions starting at or after this dataset offset (e.g. 24h)")
		to      = flag.Duration("to", 0, "only count sessions starting before this dataset offset (0 = end)")
		country = flag.String("country", "", "only count these countries (comma-separated ISO codes)")
		pop     = flag.String("pop", "", "only count these PoPs (comma-separated)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	filter, err := segstore.ParseFilter(*from, *to, *country, *pop)
	if err != nil {
		log.Fatalf("edgestat: %v", err)
	}

	store := agg.NewStore()
	col := collector.New(collector.StoreSink(store))
	if segstore.IsDataset(*in) {
		r, err := segstore.Open(*in)
		if err != nil {
			log.Fatalf("edgestat: %v", err)
		}
		// Segment batches feed the store's columnar fold directly — the
		// roll-up never materializes row structs (the JSONL branch below
		// stays row-at-a-time; both aggregate identically).
		col.AddColumnSink(collector.StoreColumnSink(store))
		err = r.ScanColumns(context.Background(), 1, filter, func(b *segstore.ColumnBatch) error {
			col.OfferColumns(b)
			b.Release()
			return col.Err()
		})
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("edgestat: reading %s: %v", *in, err)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("edgestat: %v", err)
		}
		defer f.Close()
		r := sample.NewReader(bufio.NewReaderSize(f, 1<<20))
		for {
			s, err := r.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				log.Fatalf("edgestat: reading %s: %v", *in, err)
			}
			if !filter.Match(&s) {
				continue
			}
			col.Offer(s)
		}
	}

	summaries := analysis.SummariseGroups(store)
	fmt.Printf("%d groups, %d samples, %d windows\n\n", store.Len(), store.TotalSamples, store.TotalWindows)
	rows := make([][]string, 0, len(summaries))
	for i, g := range summaries {
		if *top > 0 && i >= *top {
			break
		}
		rows = append(rows, []string{
			g.Key,
			string(g.Continent),
			fmt.Sprintf("%d", g.Sessions),
			fmt.Sprintf("%.0f%%", g.Coverage*100),
			report.F(g.MinRTTP50) + "ms",
			report.F(g.HDratioP50),
			report.F(g.Baseline) + "ms",
			report.F(g.WorstDegradation) + "ms",
			fmt.Sprintf("%d", g.Routes),
		})
	}
	report.Table(os.Stdout, []string{
		"group", "cont", "sessions", "coverage", "minrtt-p50", "hd-p50", "baseline", "worst-deg", "routes",
	}, rows)
}
