// Command edgestat inspects a measurement dataset (JSON lines from
// cmd/edgesim): it prints a per-user-group roll-up — traffic, coverage,
// medians, baseline and worst degradation — sorted by traffic, the view
// an operator would use to find the groups worth investigating.
//
// Usage:
//
//	edgesim -groups 60 -days 2 -o ds.jsonl
//	edgestat -in ds.jsonl [-top 20]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/report"
	"repro/internal/sample"
)

func main() {
	var (
		in  = flag.String("in", "", "dataset path (JSON lines; required)")
		top = flag.Int("top", 20, "number of groups to print (0 = all)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("edgestat: %v", err)
	}
	defer f.Close()

	store := agg.NewStore()
	col := collector.New(collector.StoreSink(store))
	r := sample.NewReader(bufio.NewReaderSize(f, 1<<20))
	for {
		s, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatalf("edgestat: reading %s: %v", *in, err)
		}
		col.Offer(s)
	}

	summaries := analysis.SummariseGroups(store)
	fmt.Printf("%d groups, %d samples, %d windows\n\n", store.Len(), store.TotalSamples, store.TotalWindows)
	rows := make([][]string, 0, len(summaries))
	for i, g := range summaries {
		if *top > 0 && i >= *top {
			break
		}
		rows = append(rows, []string{
			g.Key,
			string(g.Continent),
			fmt.Sprintf("%d", g.Sessions),
			fmt.Sprintf("%.0f%%", g.Coverage*100),
			report.F(g.MinRTTP50) + "ms",
			report.F(g.HDratioP50),
			report.F(g.Baseline) + "ms",
			report.F(g.WorstDegradation) + "ms",
			fmt.Sprintf("%d", g.Routes),
		})
	}
	report.Table(os.Stdout, []string{
		"group", "cont", "sessions", "coverage", "minrtt-p50", "hd-p50", "baseline", "worst-deg", "routes",
	}, rows)
}
