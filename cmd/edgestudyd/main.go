// Command edgestudyd runs the always-on study service: it ingests a
// continuous sample stream, seals 15-minute windows on the logical
// clock as they close, appends sealed data to an at-rest segment
// spool, and serves reports and health over HTTP while ingesting.
//
// Usage (live mode — the daemon generates its own stream):
//
//	edgestudyd -o dir [-seed N] [-groups N] [-days N] [-spw N]
//	           [-workers N] [-fault-plan SPEC] [-fail-fast]
//	           [-http host:port] [-addr-file path] [-report-workers N]
//	           [-cache N] [-trace file] [-progress]
//
// Usage (wire mode — an edgepopd fleet feeds the spool):
//
//	edgestudyd -o dir -listen ADDR [-network tcp|unix] [-expect-pops N]
//	           [-credit N] [-origin STR] [-http host:port] ...
//
// Usage (client mode — fetch one URL from a running daemon):
//
//	edgestudyd -fetch URL
//
// The determinism invariant: a live-mode daemon with the same
// seed/groups/days/spw/fault-plan as an `edgesim -format seg` run
// drains into a byte-identical spool, so `edgereport` over the
// daemon's segments — and the daemon's own /report — reproduce the
// golden batch report exactly, at any -workers count. `make
// studyd-race` pins this end to end.
//
// HTTP endpoints: /report (cached, stale-while-revalidate), /groups,
// /windows, /healthz, plus /metrics, /debug/vars and /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/ship"
	"repro/internal/sigctl"
	"repro/internal/studyd"
	"repro/internal/trace"
	"repro/internal/world"
)

const traceBufCap = 1 << 20

// fetchURL is the zero-dependency curl stand-in the race gate uses:
// GET the URL, stream the body to stdout, exit 1 on any non-200.
func fetchURL(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("edgestudyd: fetch: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatalf("edgestudyd: fetch: reading body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "edgestudyd: GET %s: %s\n", url, resp.Status)
		os.Exit(1)
	}
}

func reportCoverage(cov *faults.Coverage) {
	if cov == nil {
		return
	}
	if cov.Degraded() {
		fmt.Fprintf(os.Stderr, "edgestudyd: DEGRADED under fault plan %q — lost %d samples (outage %d, truncated %d, dropped %d); %d group batches quarantined; %d retries spent, %d transient faults recovered\n",
			cov.Spec, cov.SamplesLost(), cov.SamplesLostOutage, cov.SamplesLostTruncated, cov.SamplesLostDropped,
			len(cov.Quarantined), cov.RetriesSpent, cov.TransientRecovered)
	} else {
		fmt.Fprintf(os.Stderr, "edgestudyd: fault plan %q injected no data loss (%d retries spent, %d transient faults recovered)\n",
			cov.Spec, cov.RetriesSpent, cov.TransientRecovered)
	}
}

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "world seed (live mode)")
		groups     = flag.Int("groups", 300, "number of user groups (live mode)")
		days       = flag.Int("days", 10, "dataset length in days (live mode)")
		spw        = flag.Float64("spw", 8, "mean sampled sessions per group per window (live mode)")
		out        = flag.String("o", "", "at-rest segment spool directory (required; resumed if it already holds a dataset)")
		workers    = flag.Int("workers", pipeline.DefaultWorkers(), "concurrent per-window generate workers (1 = sequential; never changes the spool bytes)")
		repWorkers = flag.Int("report-workers", pipeline.DefaultWorkers(), "aggregation workers behind /report (never changes the report bytes)")
		httpAddr   = flag.String("http", "127.0.0.1:0", "HTTP service address (:0 picks a free port; see -addr-file)")
		addrFile   = flag.String("addr-file", "", "write the bound HTTP address to this file once listening")
		cacheSize  = flag.Int("cache", 64, "report cache entries (LRU, stale-while-revalidate)")
		faultPlan  = flag.String("fault-plan", "", "deterministic ingest fault plan (shapes the dataset; part of its origin; truncate= is refused)")
		failFast   = flag.Bool("fail-fast", false, "abort on the first unrecoverable injected fault instead of degrading")
		tracePath  = flag.String("trace", "", "record a deterministic flight trace of the run to this file")
		progress   = flag.Bool("progress", false, "report ingest progress to stderr every 2s")
		fetch      = flag.String("fetch", "", "client mode: GET this URL from a running daemon, print the body, exit 1 on non-200")
		listen     = flag.String("listen", "", "wire mode: accept an edgepopd fleet on this address instead of generating a live stream")
		network    = flag.String("network", "", "wire mode listen network: tcp or unix (default: unix when -listen contains a path separator)")
		expectPops = flag.Int("expect-pops", 1, "wire mode: drain once this many distinct PoPs complete their DONE handshake")
		credit     = flag.Int("credit", 4, "wire mode: credit window granted to each shipper")
		origin     = flag.String("origin", "", "wire mode: pin the spool origin; refuse shippers that disagree (default: adopt the first shipper's)")
	)
	flag.Parse()

	if *fetch != "" {
		fetchURL(*fetch)
		return
	}
	if *out == "" {
		log.Fatal("edgestudyd: -o is required (the spool directory)")
	}
	plan, err := faults.ParsePlan(*faultPlan)
	if err != nil {
		log.Fatalf("edgestudyd: -fault-plan: %v", err)
	}

	ctx, stop := sigctl.Context(context.Background(),
		"edgestudyd: second interrupt — forcing exit; the spool manifest holds the last committed state")
	defer stop()

	reg := obs.NewRegistry()
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(reg, os.Stderr, 2*time.Second)
	}
	defer stopProgress()

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(*seed)
		rec.SetBufCap(traceBufCap)
	}
	flushTrace := func() {
		if rec == nil {
			return
		}
		if err := rec.WriteFile(*tracePath); err != nil {
			log.Printf("edgestudyd: writing trace: %v", err)
		}
	}

	opt := studyd.Options{
		Dir: *out, Reg: reg, Rec: rec,
		ReportWorkers: *repWorkers, CacheEntries: *cacheSize,
		FailFast: *failFast,
	}
	if *listen == "" {
		// Live mode: the daemon generates its own continuous stream. The
		// origin is the canonical edgesim origin for the same flags — the
		// drained spool must be byte-identical to the batch dataset's, and
		// the origin is part of those bytes.
		w := world.New(world.Config{
			Seed:                   *seed,
			Groups:                 *groups,
			Days:                   *days,
			SessionsPerGroupWindow: *spw,
		})
		w.Instrument(reg)
		inj := faults.NewInjector(plan, *seed)
		if inj != nil {
			w.PoPDown = inj.Outage
		}
		w.Rec = rec
		spec := ""
		if inj != nil {
			spec = inj.Plan().Spec()
		}
		opt.World = w
		opt.Injector = inj
		opt.Origin = fmt.Sprintf("edgesim seed=%d groups=%d days=%d spw=%g plan=%q", *seed, *groups, *days, *spw, spec)
	} else if plan != nil {
		log.Fatal("edgestudyd: -fault-plan shapes the live stream; in wire mode the fleet's plan shapes the data — pass it to the edgepopd processes instead")
	}

	var d *studyd.Daemon
	var merger *ship.Merger
	if *listen != "" {
		// Wire mode: the ship merger owns the spool writer; the daemon
		// reads the at-rest segments and every merger commit invalidates
		// cached reports.
		d, err = studyd.New(opt)
		if err != nil {
			log.Fatalf("edgestudyd: %v", err)
		}
		merger, err = ship.NewMerger(ship.MergerOptions{
			SpoolDir: *out, Origin: *origin,
			ExpectPoPs: *expectPops, Credit: *credit,
			Reg: reg, Rec: rec,
			OnCommit: d.BumpVersion,
		})
		if err != nil {
			log.Fatalf("edgestudyd: %v", err)
		}
	} else {
		d, err = studyd.New(opt)
		if err != nil {
			log.Fatalf("edgestudyd: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("edgestudyd: -http: %v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("edgestudyd: -addr-file: %v", err)
		}
	}
	srv := &http.Server{Handler: d.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("edgestudyd: http: %v", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "edgestudyd: serving on http://%s\n", bound)

	start := time.Now()
	var runErr error
	if merger != nil {
		netName := *network
		if netName == "" {
			if strings.ContainsRune(*listen, os.PathSeparator) {
				netName = "unix"
			} else {
				netName = "tcp"
			}
		}
		runErr = merger.ListenAndServe(ctx, netName, *listen)
		merger.EmitTrace()
		if runErr == nil {
			d.SetDrained()
		}
	} else {
		runErr = d.RunLive(ctx, *workers)
	}
	flushTrace()

	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		log.Fatalf("edgestudyd: %v (everything committed is durable; rerun with the same flags to resume)", runErr)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "edgestudyd: interrupted — the spool holds every committed chunk; rerun with the same flags to resume")
		os.Exit(130)
	}
	if merger != nil {
		st := merger.Stats()
		fmt.Fprintf(os.Stderr, "edgestudyd: drained — merged %d shipments from %d PoPs in %s; still serving on http://%s (interrupt to exit)\n",
			st.Shipments, st.PopsDone, time.Since(start).Round(time.Millisecond), bound)
	} else {
		st := d.Stats()
		fmt.Fprintf(os.Stderr, "edgestudyd: drained — sealed %d windows, accepted %d of %d samples in %s; still serving on http://%s (interrupt to exit)\n",
			d.Watermark(), st.Accepted, st.Received, time.Since(start).Round(time.Millisecond), bound)
		reportCoverage(d.Coverage())
	}

	// Linger: the spool is at rest but the service stays up — cached
	// reports now stay fresh forever — until the operator interrupts.
	<-ctx.Done()
	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shctx)
}
