// Command edgetrace inspects the deterministic flight traces written by
// `edgesim -trace` and `edgereport -trace` — the reproduction's answer
// to the paper's operational question of *where* a degraded window went
// wrong, in the spirit of Dapper-style distributed trace analysis.
//
// Usage:
//
//	edgetrace stages   <trace>      per-stage attribution: spans, samples, events
//	edgetrace critpath [-n N] <trace>  heaviest window per group and its event chain
//	edgetrace stalls   <trace>      physical report from the .timing sidecar
//	edgetrace causes   <trace>      sender/network/receiver loss attribution
//	edgetrace diff     <a> <b>      stage-by-stage comparison of two runs
//
// The trace file is deterministic — byte-identical for a fixed (seed,
// plan) at any -workers count — so `edgetrace diff` of two runs of the
// same configuration must print "traces agree"; anything else is a
// reproducibility bug. `causes` attributes every lost sample to the
// sender (PoP outages: the data never existed), the network (batches
// truncated or dropped in flight), or the receiver (sink quarantines),
// and cross-checks the per-group loss events against the coverage
// ledger the run embedded; a reconciliation failure means the trace and
// the ledger disagree about what was lost, which voids both.
//
// The physical companion (`stalls`) reads the .timing sidecar next to
// the trace: queue-depth samples, GoBudget stall verdicts, and summed
// per-stage wall clock. Physical records are kept out of the
// deterministic file precisely so the trace bytes stay comparable
// across machines and worker counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: edgetrace <stages|critpath|stalls|causes|diff> [flags] <trace> [<trace>]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stages":
		err = runStages(os.Stdout, args)
	case "critpath":
		err = runCritPath(os.Stdout, args)
	case "stalls":
		err = runStalls(os.Stdout, args)
	case "causes":
		err = runCauses(os.Stdout, args)
	case "diff":
		err = runDiff(os.Stdout, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgetrace: %v\n", err)
		os.Exit(1)
	}
}

// load parses one trace file and warns when the flight recorder
// overwrote events — a truncated trace still analyses, but it no longer
// carries the byte-identity guarantee and totals may under-count.
func load(path string) (*trace.File, error) {
	f, err := trace.ParseFile(path)
	if err != nil {
		return nil, err
	}
	if f.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "edgetrace: warning: %s: flight recorder overwrote %d events; the trace is a suffix and totals may under-count\n", path, f.Dropped)
	}
	return f, nil
}

func one(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("expected exactly one trace file, got %d arguments", len(args))
	}
	return args[0], nil
}

func runStages(w io.Writer, args []string) error {
	path, err := one(args)
	if err != nil {
		return err
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	rows := trace.Stages(f)
	out := make([][]string, 0, len(rows))
	var spans int
	var samples int64
	for _, r := range rows {
		spans += r.Spans
		samples += r.Samples
		out = append(out, []string{
			trace.PhaseName(r.Phase), r.Stage,
			fmt.Sprint(r.Spans), fmt.Sprint(r.Samples), fmt.Sprint(r.Events),
		})
	}
	fmt.Fprintf(w, "== Stage attribution: %s (%d events, base %016x) ==\n", path, len(f.Events), f.Base)
	report.Table(w, []string{"phase", "stage", "spans", "samples", "events"}, out)
	fmt.Fprintf(w, "total: %d spans, %d samples attributed\n", spans, samples)
	return nil
}

func runCritPath(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("critpath", flag.ContinueOnError)
	n := fs.Int("n", 10, "show the n heaviest group paths (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := one(fs.Args())
	if err != nil {
		return err
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	rows := trace.CriticalPaths(f)
	shown := rows
	if *n > 0 && len(shown) > *n {
		shown = shown[:*n]
	}
	fmt.Fprintf(w, "== Critical paths: %s (heaviest window per group, %d of %d tracks) ==\n", path, len(shown), len(rows))
	for _, r := range shown {
		fmt.Fprintf(w, "\n%s window %d  (weight %d)\n", r.Track, r.Win, r.Samples)
		steps := make([][]string, 0, len(r.Steps))
		for _, e := range r.Steps {
			steps = append(steps, []string{
				trace.PhaseName(e.Phase), e.Kind.String(), e.Stage,
				fmt.Sprint(e.Value), e.Detail,
			})
		}
		report.Table(w, []string{"phase", "kind", "stage", "value", "detail"}, steps)
	}
	return nil
}

func runStalls(w io.Writer, args []string) error {
	path, err := one(args)
	if err != nil {
		return err
	}
	ts, err := trace.ParseTimingFile(path + ".timing")
	if err != nil {
		return err
	}
	if ts == nil {
		fmt.Fprintf(w, "no timing sidecar at %s.timing (the run recorded no physical events)\n", path)
		return nil
	}
	rows := trace.StallReport(ts)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Stage, fmt.Sprint(r.Stalls), fmt.Sprint(r.Depths),
			fmt.Sprint(r.MaxDepth), time.Duration(r.TimeNs).String(),
		})
	}
	fmt.Fprintf(w, "== Stall report: %s.timing (%d physical events) ==\n", path, len(ts))
	report.Table(w, []string{"stage", "stalls", "depth-samples", "max-depth", "wall-clock"}, out)
	return nil
}

func runCauses(w io.Writer, args []string) error {
	path, err := one(args)
	if err != nil {
		return err
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	rep := trace.Causes(f)
	fmt.Fprintf(w, "== Cause attribution: %s ==\n", path)
	if len(rep.Groups) == 0 {
		fmt.Fprintln(w, "no loss events: the run degraded nothing")
	} else {
		out := make([][]string, 0, len(rep.Groups))
		for _, g := range rep.Groups {
			out = append(out, []string{
				g.Track, fmt.Sprint(g.Sender), fmt.Sprint(g.Network),
				fmt.Sprint(g.Receiver), fmt.Sprint(g.Total()), join(g.Faults),
			})
		}
		report.Table(w, []string{"track", "sender", "network", "receiver", "total", "faults"}, out)
		fmt.Fprintf(w, "buckets: sender %d (never produced), network %d (lost in flight), receiver %d (refused/withdrawn)\n",
			rep.Sender, rep.Network, rep.Receiver)
	}
	fmt.Fprintf(w, "retry economy: %d retries spent, %d transients recovered\n", rep.Retries, rep.Recovered)
	if rep.Dedup > 0 {
		fmt.Fprintf(w, "shipping: %d duplicate deliveries dropped idempotently (replays and injected dups; never data loss)\n", rep.Dedup)
	}
	if rep.Checks == nil {
		fmt.Fprintln(w, "ledger: no coverage marks in the trace (fault-free or pre-ledger run); nothing to reconcile")
		return nil
	}
	out := make([][]string, 0, len(rep.Checks))
	for _, c := range rep.Checks {
		verdict := "ok"
		if !c.OK() {
			verdict = "MISMATCH"
		}
		out = append(out, []string{c.Loss, fmt.Sprint(c.Traced), fmt.Sprint(c.Ledger), verdict})
	}
	report.Table(w, []string{"cause", "traced", "ledger", "verdict"}, out)
	if !rep.Reconciled() {
		return fmt.Errorf("trace loss events do not reconcile with the coverage ledger")
	}
	fmt.Fprintln(w, "reconciled: every traced loss is accounted in the ledger, and vice versa")
	return nil
}

func runDiff(w io.Writer, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff expects exactly two trace files")
	}
	a, err := load(args[0])
	if err != nil {
		return err
	}
	b, err := load(args[1])
	if err != nil {
		return err
	}
	rows := trace.Diff(a, b)
	var out [][]string
	for _, r := range rows {
		if r.Same() {
			continue
		}
		out = append(out, []string{
			trace.PhaseName(r.Phase), r.Stage,
			fmt.Sprint(r.ASpans), fmt.Sprint(r.BSpans),
			fmt.Sprint(r.ASamples), fmt.Sprint(r.BSamples),
		})
	}
	if len(out) == 0 {
		fmt.Fprintf(w, "traces agree: %d stages, identical spans and samples\n", len(rows))
		return nil
	}
	fmt.Fprintf(w, "== Stage diff: %s vs %s (%d of %d stages differ) ==\n", args[0], args[1], len(out), len(rows))
	report.Table(w, []string{"phase", "stage", "spans-a", "spans-b", "samples-a", "samples-b"}, out)
	return fmt.Errorf("traces differ")
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
