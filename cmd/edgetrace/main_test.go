package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/study"
	"repro/internal/trace"
	"repro/internal/world"
)

// writeTrace runs a small chaos study and writes its trace (plus timing
// sidecar) under dir, returning the trace path.
func writeTrace(t *testing.T, dir, name string, spec string) string {
	t.Helper()
	var plan *faults.Plan
	if spec != "" {
		p, err := faults.ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan: %v", err)
		}
		plan = p
	}
	cfg := world.Config{Seed: 1234, Groups: 17, Days: 1, SessionsPerGroupWindow: 28}
	rec := trace.New(cfg.Seed)
	rec.SetBufCap(1 << 17)
	if _, err := study.RunCtx(context.Background(), cfg, study.Options{Workers: 4, Plan: plan, Trace: rec}); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := rec.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

const testSpec = "seed=7;sink-transient=0.004;sink-permanent=0.0004;truncate=0.15;corrupt=0.05;" +
	"fail-group=3;outage=gru:20-40;delay=0.2;delay-max=300us;retries=4;retry-base=50us"

func TestSubcommandsOverChaosTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "chaos.trace", testSpec)

	var b bytes.Buffer
	if err := runStages(&b, []string{path}); err != nil {
		t.Fatalf("stages: %v", err)
	}
	for _, want := range []string{"generate", "seal", "feed", "spans"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("stages output missing %q:\n%s", want, b.String())
		}
	}

	b.Reset()
	if err := runCritPath(&b, []string{"-n", "3", path}); err != nil {
		t.Fatalf("critpath: %v", err)
	}
	if !strings.Contains(b.String(), "window") || !strings.Contains(b.String(), "weight") {
		t.Errorf("critpath output lacks window/weight lines:\n%s", b.String())
	}

	b.Reset()
	if err := runCauses(&b, []string{path}); err != nil {
		t.Fatalf("causes: %v (output:\n%s)", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"sender", "network", "receiver", "reconciled", "retries spent"} {
		if !strings.Contains(out, want) {
			t.Errorf("causes output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("causes reported a reconciliation mismatch:\n%s", out)
	}

	b.Reset()
	if err := runStalls(&b, []string{path}); err != nil {
		t.Fatalf("stalls: %v", err)
	}
	if !strings.Contains(b.String(), "agg_shard") {
		t.Errorf("stalls output missing shard stages:\n%s", b.String())
	}
}

func TestDiffAgreesAndDiffers(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.trace", testSpec)
	b := writeTrace(t, dir, "b.trace", testSpec)
	c := writeTrace(t, dir, "c.trace", "") // fault-free: different story

	var out bytes.Buffer
	if err := runDiff(&out, []string{a, b}); err != nil {
		t.Fatalf("diff of identical runs errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "traces agree") {
		t.Errorf("identical runs did not agree:\n%s", out.String())
	}

	out.Reset()
	if err := runDiff(&out, []string{a, c}); err == nil {
		t.Errorf("chaos vs clean runs reported no difference:\n%s", out.String())
	}
}

func TestCausesCleanRun(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "clean.trace", "")
	var b bytes.Buffer
	if err := runCauses(&b, []string{path}); err != nil {
		t.Fatalf("causes on a clean run: %v", err)
	}
	if !strings.Contains(b.String(), "degraded nothing") {
		t.Errorf("clean run not reported as loss-free:\n%s", b.String())
	}
}

// TestCausesReportsShippingDedup: a merge-tier trace carrying the
// run-level dedup mark surfaces it in the causes report, labeled as
// absorbed redundancy rather than loss.
func TestCausesReportsShippingDedup(t *testing.T) {
	dir := t.TempDir()
	rec := trace.New(99)
	tb := rec.Buf()
	tb.Emit(trace.Event{
		Track: trace.TrackRun, Phase: trace.PhaseRun, Win: -1, Seq: 1 << 20,
		Kind: trace.KMark, Stage: trace.CoverageStage, Value: 7, Detail: trace.MarkDedup,
	})
	path := filepath.Join(dir, "merge.trace")
	if err := rec.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var b bytes.Buffer
	if err := runCauses(&b, []string{path}); err != nil {
		t.Fatalf("causes: %v", err)
	}
	if !strings.Contains(b.String(), "7 duplicate deliveries dropped idempotently") {
		t.Errorf("causes output missing the dedup line:\n%s", b.String())
	}
}
