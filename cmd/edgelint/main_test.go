package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/suite"
)

// buildDriver compiles the edgelint binary once per test binary run.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "edgelint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building edgelint: %v\n%s", err, out)
	}
	return bin
}

// The standalone driver over the known-bad fixture module must surface
// one finding per planted violation and exit 1.
func TestStandaloneOnBadModule(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "testdata/badmod")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	for _, want := range []string{
		"wall-clock read time.Now in deterministic package agg",
		"global math/rand draw rand.Int",
		"append to out during map iteration without a subsequent sort",
		"captured by goroutine closure",
		"import of math/rand outside internal/rng",
		"multiplying two bits/s (units.Rate) quantities",
		"direct conversion from bytes (units.ByteSize) to bits/s (units.Rate)",
		"unchecked error from (*bufio.Writer).Flush",
		"Orphan creates a pipeline group but has no context.Context parameter",
		"column batch b may reach this exit without being released",
		"column batch b is used after its ownership was handed off",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("missing diagnostic %q in output:\n%s", want, &stdout)
		}
	}
}

// The same module through `go vet -vettool` must fail with the same
// diagnostics, proving the unitchecker protocol end to end.
func TestVettoolOnBadModule(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded on the known-bad module; output:\n%s", out)
	}
	for _, want := range []string{
		"wall-clock read time.Now in deterministic package agg",
		"multiplying two bits/s (units.Rate) quantities",
		"unchecked error from (*bufio.Writer).Flush",
		"Orphan creates a pipeline group but has no context.Context parameter",
		"column batch b is used after its ownership was handed off",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing diagnostic %q in go vet output:\n%s", want, out)
		}
	}
}

// The repo itself must lint clean: every genuine finding the suite has
// surfaced is fixed (or carries an //edgelint:allow with a recorded
// reason), and stays that way.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint in -short mode")
	}
	var out bytes.Buffer
	if code := runStandalone("../..", &out); code != 0 {
		t.Fatalf("edgelint on the repo exited %d:\n%s", code, &out)
	}
}

// A second run against an unchanged module must be served entirely from
// the result cache — same findings, zero misses — and a cached hit must
// replay imported facts too (the cross-package batchlife diagnostics
// stay present).
func TestResultCacheRoundTrip(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	run := func() (string, suite.Result) {
		var out bytes.Buffer
		code := runStandaloneCfg("testdata/badmod", &out, runConfig{json: true, cache: cacheDir})
		if code != 1 {
			t.Fatalf("want exit 1 on badmod, got %d:\n%s", code, &out)
		}
		var res suite.Result
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("decoding -json output: %v\n%s", err, &out)
		}
		return out.String(), res
	}

	first, cold := run()
	if cold.Stats.CacheMisses == 0 {
		t.Fatalf("cold run reported no cache misses: %+v", cold.Stats)
	}
	second, warm := run()
	if warm.Stats.CacheHits != warm.Stats.Packages || warm.Stats.CacheMisses != 0 {
		t.Errorf("warm run not fully cached: %d hit(s), %d miss(es), %d package(s)",
			warm.Stats.CacheHits, warm.Stats.CacheMisses, warm.Stats.Packages)
	}
	if len(warm.Findings) != len(cold.Findings) {
		t.Errorf("warm run replayed %d finding(s), cold had %d:\ncold:\n%s\nwarm:\n%s",
			len(warm.Findings), len(cold.Findings), first, second)
	}
	var handoff bool
	for _, f := range warm.Findings {
		if strings.Contains(f.Message, "handed off") {
			handoff = true
		}
	}
	if !handoff {
		t.Errorf("warm run lost the fact-dependent batchlife finding:\n%s", second)
	}
}
