package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles the edgelint binary once per test binary run.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "edgelint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building edgelint: %v\n%s", err, out)
	}
	return bin
}

// The standalone driver over the known-bad fixture module must surface
// one finding per planted violation and exit 1.
func TestStandaloneOnBadModule(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "testdata/badmod")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	for _, want := range []string{
		"wall-clock read time.Now in deterministic package agg",
		"global math/rand draw rand.Int",
		"append to out during map iteration without a subsequent sort",
		"captured by goroutine closure",
		"import of math/rand outside internal/rng",
		"multiplying two bits/s (units.Rate) quantities",
		"direct conversion from bytes (units.ByteSize) to bits/s (units.Rate)",
		"unchecked error from (*bufio.Writer).Flush",
		"Orphan creates a pipeline group but has no context.Context parameter",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("missing diagnostic %q in output:\n%s", want, &stdout)
		}
	}
}

// The same module through `go vet -vettool` must fail with the same
// diagnostics, proving the unitchecker protocol end to end.
func TestVettoolOnBadModule(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded on the known-bad module; output:\n%s", out)
	}
	for _, want := range []string{
		"wall-clock read time.Now in deterministic package agg",
		"multiplying two bits/s (units.Rate) quantities",
		"unchecked error from (*bufio.Writer).Flush",
		"Orphan creates a pipeline group but has no context.Context parameter",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing diagnostic %q in go vet output:\n%s", want, out)
		}
	}
}

// The repo itself must lint clean: every genuine finding the suite has
// surfaced is fixed (or carries an //edgelint:allow with a recorded
// reason), and stays that way.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint in -short mode")
	}
	var out bytes.Buffer
	if code := runStandalone("../..", &out); code != 0 {
		t.Fatalf("edgelint on the repo exited %d:\n%s", code, &out)
	}
}
