// Package agg is a known-bad fixture: its final import-path segment
// puts it under the deterministic-package contract, and every function
// violates one rule.
package agg

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock in a deterministic package.
func Stamp() time.Time {
	return time.Now()
}

// Draw uses global math/rand state.
func Draw() int {
	return rand.Int()
}

// Keys feeds a slice from map iteration without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Leak shares one generator across goroutines.
func Leak(r *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		go func() {
			_ = r.Int()
		}()
	}
}
