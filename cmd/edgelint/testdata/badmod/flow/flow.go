// Package flow is a known-bad fixture for the unitsafety, closecheck,
// and poisonpath analyzers.
package flow

import (
	"bufio"

	"badmod/internal/pipeline"
	"badmod/internal/units"
)

// Square multiplies two rates.
func Square(r units.Rate) units.Rate {
	return r * r
}

// Cast converts bytes to a rate with a cast.
func Cast(b units.ByteSize) units.Rate {
	return units.Rate(b)
}

// Drop discards a flush error.
func Drop(bw *bufio.Writer) {
	bw.Flush()
}

// Orphan creates a pipeline group with no context parameter.
func Orphan() error {
	g := pipeline.NewGroup(nil)
	return g.Wait()
}
