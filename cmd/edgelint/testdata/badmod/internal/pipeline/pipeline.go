// Package pipeline mirrors the shape of repro/internal/pipeline so the
// poisonpath contract applies inside the fixture module.
package pipeline

import "context"

// Group is a trivial stage group.
type Group struct{ ctx context.Context }

// NewGroup returns a group under parent.
func NewGroup(parent context.Context) *Group {
	if parent == nil {
		parent = context.Background()
	}
	return &Group{ctx: parent}
}

// Wait reports the group error.
func (g *Group) Wait() error { return nil }
