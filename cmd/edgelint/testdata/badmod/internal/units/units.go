// Package units mirrors the shape of repro/internal/units so the
// unitsafety contract applies inside the fixture module.
package units

// Rate is a data rate in bits per second.
type Rate float64

// ByteSize is a byte count.
type ByteSize int64

// Mbps is one megabit per second.
const Mbps Rate = 1e6
