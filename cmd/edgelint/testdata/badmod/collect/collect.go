// Package collect plants batchlife violations that depend on facts
// imported from the sibling segstore package: a leak on an early exit
// and a use after ownership was handed to a consuming callee.
package collect

import "badmod/segstore"

// LeakOnBranch releases on the main path only; the early return leaks.
func LeakOnBranch(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	if b.Len() > 3 {
		return 1
	}
	b.Release()
	return 2
}

// UseAfterHandoff keeps touching the batch after Drain consumed it.
func UseAfterHandoff(r *segstore.Reader) int {
	b, err := r.Read()
	if err != nil {
		return 0
	}
	segstore.Drain(b)
	return b.Len()
}
