// Package segstore is the fixture module's miniature batch kernel.
// Its import path ends in /segstore, so batchlife treats ColumnBatch's
// own methods as the trusted kernel and summarizes the rest (Read
// returns an owned batch, Drain consumes its argument) as facts for
// the consumer package to import.
package segstore

import "errors"

// ColumnBatch stands in for the pooled columnar batch.
type ColumnBatch struct {
	n    int
	refs int
}

// Len returns the row count.
func (b *ColumnBatch) Len() int { return b.n }

// Release returns the batch to its pool.
func (b *ColumnBatch) Release() { b.refs-- }

// Reader hands out owned batches.
type Reader struct {
	segs []int
}

// Read returns a batch the caller owns.
func (r *Reader) Read() (*ColumnBatch, error) {
	if len(r.segs) == 0 {
		return nil, errors.New("empty")
	}
	return &ColumnBatch{n: r.segs[0]}, nil
}

// Drain consumes the batch it is given.
func Drain(b *ColumnBatch) {
	b.Release()
}
