// go vet unitchecker protocol: vet invokes the tool once per package
// ("unit") with a JSON config naming the unit's files and the export
// data of its dependencies, and expects facts written to VetxOutput,
// diagnostics on stderr, and exit 2 when any diagnostic fired. This
// mirrors golang.org/x/tools/go/analysis/unitchecker on the subset the
// edgelint suite needs. Facts ride the same files cmd/go already
// shuttles between units: each dependency's PackageVetx bundle is
// loaded into the fact store before analysis, and the unit's own
// exported facts are serialized to VetxOutput afterwards — so
// batchlife's ownership summaries cross package boundaries under
// `go vet -vettool` exactly as they do standalone.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

// vetConfig is the JSON unit description go vet writes; field names
// must match cmd/go's (a superset is tolerated, unknown keys ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// vet requires the output file to exist for caching even when the
	// unit fails partway; write a placeholder first, the real fact
	// bundle replaces it after analysis.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
			return 2
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Dependencies resolve through the gc export data vet compiled.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &load.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	pkg.Types, _ = tconf.Check(cfg.ImportPath, fset, files, info)
	pkg.Info = info
	if len(pkg.Errors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	// Dependency facts arrive as the vetx files earlier edgelint
	// invocations wrote for each imported package. Fact types must be
	// registered before decoding, or AddBundle drops them as unknown.
	suite.RegisterFacts(suite.Analyzers)
	store := suite.NewFactStore()
	for path, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // missing vetx ⇒ no facts for that dep
		}
		if err := store.AddBundle(path, data); err != nil {
			fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
			return 2
		}
	}

	findings, err := suite.RunUnit(pkg, suite.Analyzers, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		bundle, err := store.Bundle(cfg.ImportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, bundle, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
			return 2
		}
	}
	// A VetxOnly unit is a dependency of the requested packages, not
	// itself requested: vet wants its facts, not its diagnostics.
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
