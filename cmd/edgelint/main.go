// Command edgelint runs the repo's domain-specific static analyzers
// (internal/lint/...): nondeterminism, rngsplit, unitsafety,
// closecheck, and poisonpath — the contracts the compiler cannot see
// (DESIGN.md §8).
//
// Two modes share one diagnostic pipeline:
//
// Standalone, over a module tree (type-checking from source, no build
// cache needed):
//
//	edgelint            # the module containing the current directory
//	edgelint ./agg      # only packages under a directory
//	edgelint -list      # print the analyzers and their contracts
//
// As a go vet tool, speaking vet's unitchecker protocol (-V=full,
// -flags, and JSON vet.cfg units with gc export data):
//
//	go vet -vettool=$(which edgelint) ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or analysis failure.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

func main() {
	// The go vet tool protocol probes first with -V=full (version for
	// the build cache key) and -flags (supported analyzer flags).
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetUnit(os.Args[1]))
	}

	list := flag.Bool("list", false, "list analyzers and their contracts")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edgelint [-list] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "/...")
		if dir == "" {
			dir = "."
		}
	}
	os.Exit(runStandalone(dir, os.Stdout))
}

// printVersion emits a line whose content changes whenever the binary
// does, so `go vet` caches results against the right tool build.
func printVersion() {
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			_ = f.Close()
		}
	}
	// cmd/go requires the last field to be buildID=<hex>.
	fmt.Printf("edgelint version devel buildID=%s\n", sum)
}

// runStandalone lints every module package under dir.
func runStandalone(dir string, out io.Writer) int {
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	moduleDir, err := load.FindModuleRoot(abs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	loader, err := load.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	// Restrict to packages rooted under dir (so `edgelint ./agg` works)
	// without losing cross-package type information.
	var selected []*load.Package
	for _, p := range pkgs {
		if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
			selected = append(selected, p)
		}
	}
	findings, err := suite.Run(selected, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(abs, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(out, rel)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "edgelint: %d finding(s) in %d package(s)\n", len(findings), len(selected))
		return 1
	}
	return 0
}
