// Command edgelint runs the repo's domain-specific static analyzers
// (internal/lint/...): nondeterminism, rngsplit, unitsafety,
// closecheck, poisonpath, rowfree, tracekey, and batchlife — the
// contracts the compiler cannot see (DESIGN.md §8, §13).
//
// Two modes share one diagnostic pipeline:
//
// Standalone, over a module tree (type-checking from source, no build
// cache needed):
//
//	edgelint            # the module containing the current directory
//	edgelint ./agg      # only report findings under a directory
//	edgelint -list      # print the analyzers and their contracts
//	edgelint -stats .   # add per-analyzer wall time and finding counts
//	edgelint -json .    # machine-readable findings + stats
//
// Standalone runs analyze packages in dependency order (facts flow
// from a package to its importers), in parallel, behind a file-hash
// keyed result cache (-cache=off disables; -cache=DIR relocates).
//
// As a go vet tool, speaking vet's unitchecker protocol (-V=full,
// -flags, and JSON vet.cfg units with gc export data):
//
//	go vet -vettool=$(which edgelint) ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or analysis failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

func main() {
	// The go vet tool protocol probes first with -V=full (version for
	// the build cache key) and -flags (supported analyzer flags).
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetUnit(os.Args[1]))
	}

	list := flag.Bool("list", false, "list analyzers and their contracts")
	stats := flag.Bool("stats", false, "print per-analyzer wall time and finding counts")
	jsonOut := flag.Bool("json", false, "emit findings and stats as JSON")
	cache := flag.String("cache", "auto", `result cache: "auto" (per-user cache dir), "off", or a directory`)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edgelint [-list] [-stats] [-json] [-cache=auto|off|DIR] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "/...")
		if dir == "" {
			dir = "."
		}
	}
	os.Exit(runStandaloneCfg(dir, os.Stdout, runConfig{stats: *stats, json: *jsonOut, cache: *cache}))
}

// printVersion emits a line whose content changes whenever the binary
// does, so `go vet` caches results against the right tool build.
func printVersion() {
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			_ = f.Close()
		}
	}
	// cmd/go requires the last field to be buildID=<hex>.
	fmt.Printf("edgelint version devel buildID=%s\n", sum)
}

// runConfig carries the standalone mode's flag settings.
type runConfig struct {
	stats bool
	json  bool
	cache string
}

// runStandalone lints the module containing dir with default settings,
// reporting findings under dir (tests call this directly).
func runStandalone(dir string, out io.Writer) int {
	return runStandaloneCfg(dir, out, runConfig{cache: "auto"})
}

func runStandaloneCfg(dir string, out io.Writer, cfg runConfig) int {
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	moduleDir, err := load.FindModuleRoot(abs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	var cacheDir string
	switch cfg.cache {
	case "auto":
		cacheDir = suite.DefaultCacheDir()
	case "off", "":
		cacheDir = ""
	default:
		cacheDir = cfg.cache
	}
	res, err := suite.RunModule(moduleDir, suite.Analyzers, suite.Options{CacheDir: cacheDir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
		return 2
	}
	// Analysis covers the whole module (facts and caching need every
	// package), but only findings rooted under dir are reported — this
	// is what `edgelint ./agg` means.
	findings := res.Findings[:0:0]
	for _, f := range res.Findings {
		rel, err := filepath.Rel(abs, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		f.Pos.Filename = rel
		findings = append(findings, f)
	}
	if cfg.json {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suite.Result{Findings: findings, Stats: res.Stats}); err != nil {
			fmt.Fprintf(os.Stderr, "edgelint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		if cfg.stats {
			printStats(out, res.Stats)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "edgelint: %d finding(s) in %d package(s)\n", len(findings), res.Stats.Packages)
		return 1
	}
	return 0
}

// printStats renders the per-analyzer accounting table.
func printStats(out io.Writer, s suite.Stats) {
	fmt.Fprintf(out, "packages: %d analyzed, %d cache hit(s), %d miss(es)\n", s.Packages, s.CacheHits, s.CacheMisses)
	for _, st := range s.SortedAnalyzerStats() {
		fmt.Fprintf(out, "%15s  %10v  %d finding(s)\n", st.Name, st.Time.Round(10*time.Microsecond), st.Findings)
	}
}
