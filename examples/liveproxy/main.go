// Liveproxy: the methodology on real sockets. Starts the measurement
// load balancer (internal/lb) on localhost, fetches a handful of
// objects over one HTTP session, and prints the session report built
// from the kernel's TCP_INFO — the live equivalent of the paper's
// Proxygen instrumentation (§2.2.2). Linux only (TCP_INFO).
//
// Run with: go run ./examples/liveproxy
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"repro/internal/lb"
)

func main() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	reports := make(chan lb.SessionReport, 1)
	srv := &lb.Server{OnReport: func(r lb.SessionReport) { reports <- r }}
	go srv.Serve(l)

	sizes := []int64{3_000, 150_000, 1_250_000, 45_000}
	fmt.Printf("fetching %d objects from the live load balancer at %s\n", len(sizes), l.Addr())
	if err := fetch(l.Addr().String(), sizes); err != nil {
		log.Fatal(err)
	}

	select {
	case r := <-reports:
		fmt.Printf("\nsession report for %s\n", r.RemoteAddr)
		fmt.Printf("  MinRTT (kernel):  %v\n", r.MinRTT)
		fmt.Printf("  bytes served:     %d\n", r.BytesServed)
		fmt.Printf("  transactions:     %d after correction\n", len(r.Transactions))
		for i, txn := range r.Transactions {
			fmt.Printf("    txn %d: bytes=%-8d dur=%-12v wnic=%-7d ineligible=%v\n",
				i+1, txn.Bytes, txn.Duration, txn.Wnic, txn.Ineligible)
		}
		fmt.Printf("  HD outcome:       %d tested, %d achieved, HDratio=%.2f\n",
			r.Outcome.Tested, r.Outcome.AchievedCount, r.HDratio())
	case <-time.After(10 * time.Second):
		log.Fatal("no session report (is this platform missing TCP_INFO?)")
	}
}

// fetch retrieves the objects over a single keep-alive connection.
func fetch(addr string, sizes []int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	for i, size := range sizes {
		connHdr := ""
		if i == len(sizes)-1 {
			connHdr = "Connection: close\r\n"
		}
		fmt.Fprintf(conn, "GET /object?bytes=%d HTTP/1.1\r\nHost: live\r\n%s\r\n", size, connHdr)
		var contentLen int64
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return err
			}
			if line == "\r\n" {
				break
			}
			fmt.Sscanf(line, "Content-Length: %d", &contentLen)
		}
		if _, err := io.CopyN(io.Discard, br, contentLen); err != nil {
			return err
		}
		fmt.Printf("  fetched %d bytes\n", contentLen)
	}
	return nil
}
