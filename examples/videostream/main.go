// Videostream: stream HD-video-like segments through the packet-level
// simulator at different bottleneck bandwidths and watch HDratio track
// whether the connection can sustain the 2.5 Mbps playback floor.
//
// This is the workload the paper's goodput target is defined for
// (§3.2.1): after a video starts playing, user experience depends on
// sustaining the bitrate; a client below ~2.5 Mbps rebuffers.
//
// Run with: go run ./examples/videostream
package main

import (
	"fmt"
	"time"

	"repro/edge"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/sample"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

func main() {
	fmt.Println("4-second HD video segments (1.25 MB each) over a 80 ms path:")
	fmt.Println()
	fmt.Printf("%-12s %-9s %-10s %-10s %s\n", "bottleneck", "HDratio", "tested", "achieved", "verdict")
	for _, mbps := range []float64{0.5, 1, 2, 2.5, 3, 5, 10, 25} {
		hd, tested, achieved := streamSession(units.Rate(mbps * 1e6))
		verdict := "smooth HD playback"
		switch {
		case tested == 0:
			verdict = "no transaction could test"
		case hd == 0:
			verdict = "constant rebuffering"
		case hd < 1:
			verdict = "intermittent rebuffering"
		}
		fmt.Printf("%-12s %-9.2f %-10d %-10d %s\n",
			units.Rate(mbps*1e6), hd, tested, achieved, verdict)
	}
}

// streamSession plays six segments over one connection and returns the
// session's HDratio.
func streamSession(bottleneck units.Rate) (hd float64, tested, achieved int) {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 24
	fwd := &netsim.Link{Sim: &sim, Rate: bottleneck, Delay: 40 * time.Millisecond, QueueLimit: 64}
	rev := &netsim.Link{Sim: &sim, Delay: 40 * time.Millisecond}
	s := httpsim.NewSession(&sim, tcpsim.Config{CC: tcpsim.Cubic, HyStart: true}, fwd, rev, sample.HTTP2, 40*time.Millisecond)

	// A 2.5 Mbps stream needs 1.25 MB per 4-second segment; the player
	// requests the next segment every 4 seconds.
	const segment = 1_250_000
	var reqs []httpsim.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, httpsim.Request{
			At:            time.Duration(i) * 4 * time.Second,
			ResponseBytes: segment,
		})
	}
	s.Schedule(reqs)
	sim.Run()

	out := s.Evaluate(edge.DefaultConfig())
	return out.HDratio(), out.Tested, out.AchievedCount
}
