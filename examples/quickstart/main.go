// Quickstart: evaluate the paper's Figure 4 worked example with the
// public API.
//
// A client with a 60 ms MinRTT fetches three objects in series over one
// HTTP session. The methodology decides, per transaction, whether it
// could test for HD goodput (2.5 Mbps) and whether it achieved it —
// demonstrating why raw goodput (bytes/duration) misjudges small
// transfers: transaction 2's raw goodput is 2.4 Mbps, below the HD
// target, yet it demonstrably sustained 2.5 Mbps once cwnd growth and
// propagation time are accounted for.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/edge"
)

func main() {
	const (
		mss    = 1500
		iw     = 10 * mss // initial congestion window: 10 packets
		minRTT = 60 * time.Millisecond
	)

	sess := edge.Session{
		MinRTT: minRTT,
		Transactions: []edge.Transaction{
			// Transaction 1: 2 packets, one round trip.
			{Bytes: 2 * mss, Duration: minRTT, Wnic: iw},
			// Transaction 2: 24 packets, two round trips.
			{Bytes: 24 * mss, Duration: 2 * minRTT, Wnic: iw},
			// Transaction 3: 14 packets, one round trip on the grown window.
			{Bytes: 14 * mss, Duration: minRTT, Wnic: 20 * mss},
		},
	}

	out := edge.Evaluate(sess, edge.DefaultConfig())
	fmt.Printf("target goodput: %v (HD video floor)\n\n", edge.HDGoodput)
	for i, txn := range sess.Transactions {
		to := out.Transactions[i]
		raw := float64(txn.Bytes*8) / txn.Duration.Seconds() / 1e6
		fmt.Printf("transaction %d: %5d bytes in %4v  raw=%.1fMbps  Gtestable=%v  testable=%-5v achieved=%v\n",
			i+1, txn.Bytes, txn.Duration, raw, to.Gtestable, to.Testable, to.AchievedTarget)
	}
	fmt.Printf("\nsession HDratio = %.2f (%d of %d testable transactions achieved HD goodput)\n",
		out.HDratio(), out.AchievedCount, out.Tested)

	// The same session judged by the naive baseline (§4): transaction
	// 2's 2.4 Mbps raw goodput would be misread as failing HD.
	est := edge.EstimateDeliveryRate(sess.Transactions[1], minRTT)
	fmt.Printf("\ntransaction 2 delivery-rate estimate: %v (raw goodput said 2.4 Mbps)\n", est)
}
