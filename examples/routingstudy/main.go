// Routingstudy: run the §6 opportunity analysis on a small synthetic
// region and list the user groups where an alternate egress route beats
// the BGP-preferred one.
//
// The paper's headline finding is that such groups are rare — default
// policy routing is close to optimal — and this example shows both the
// common case (preferred route wins) and the exceptions the analysis
// surfaces, with their relationship types and confidence intervals.
//
// Run with: go run ./examples/routingstudy
package main

import (
	"fmt"

	"repro/edge"
)

func main() {
	fmt.Println("generating a 2-day synthetic region (this takes ~10s)...")
	res := edge.RunStudy(edge.StudyConfig{
		Seed:                   7,
		Groups:                 60,
		Days:                   2,
		SessionsPerGroupWindow: 90,
	})

	opp := res.OppMinRTT
	fmt.Printf("\npreferred route within 3 ms of optimal for %.1f%% of traffic (paper: 83.9%%)\n",
		100*opp.FractionWithinOfOptimal(3))
	fmt.Printf("MinRTTP50 improvable by ≥5 ms for %.1f%% of traffic (paper: 2.0%%)\n\n",
		100*opp.FractionImprovableAtLeast(5))

	fmt.Println("groups with persistent ≥5 ms opportunity:")
	found := 0
	for _, g := range opp.Groups {
		events, valid := 0, 0
		var bestDiff float64
		var altIdx int
		for _, pt := range g.Points {
			if !pt.Valid {
				continue
			}
			valid++
			if pt.Event(5) {
				events++
				if pt.Diff > bestDiff {
					bestDiff = pt.Diff
					altIdx = pt.AltIndex
				}
			}
		}
		if valid == 0 || float64(events)/float64(valid) < 0.75 {
			continue
		}
		found++
		pref := g.Group.RouteMeta[0]
		alt := g.Group.RouteMeta[altIdx]
		fmt.Printf("  %-28s %s(%s) loses to %s(%s) by up to %.1f ms in %d/%d windows\n",
			g.Group.Key, pref.Rel, pathDesc(pref.ASPathLen, pref.Prepended),
			alt.Rel, pathDesc(alt.ASPathLen, alt.Prepended), bestDiff, events, valid)
	}
	if found == 0 {
		fmt.Println("  none — the static policy was optimal everywhere in this draw")
	}

	fmt.Println("\ncaveat (§6.2.2): alternates that measure well may lack capacity for")
	fmt.Println("full production traffic; a real controller must shift load gradually.")
}

func pathDesc(pathLen int, prepended bool) string {
	if prepended {
		return fmt.Sprintf("path=%d,prepended", pathLen)
	}
	return fmt.Sprintf("path=%d", pathLen)
}
