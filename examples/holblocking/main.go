// Holblocking: the transport change the paper's footnote 1 anticipates.
// Two equal-priority objects are served concurrently over (a) an
// HTTP/2-style multiplexed TCP byte stream and (b) a QUIC-like
// connection with independent streams, while the path drops exactly one
// packet belonging to the first object.
//
// Over TCP, every byte behind the hole — including the second object's
// interleaved chunks — waits for the retransmission. Over QUIC, the
// unaffected stream completes on time. The example prints both
// completion times at increasing loss positions.
//
// Run with: go run ./examples/holblocking
package main

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/quicsim"
	"repro/internal/tcpsim"
	"repro/internal/units"
)

const (
	objPackets = 20
	oneWay     = 50 * time.Millisecond
	rate       = 10 * units.Mbps
)

func main() {
	fmt.Println("two 30KB objects multiplexed over a 100ms/10Mbps path;")
	fmt.Println("one packet of object A is dropped:")
	fmt.Println()
	fmt.Printf("%-22s %-16s %-16s\n", "", "obj B completes", "penalty vs clean")

	cleanTCP := tcpCase(-1)
	cleanQUIC := quicCase(false)
	fmt.Printf("%-22s %-16v %-16s\n", "tcp/h2 (no loss)", cleanTCP, "-")
	fmt.Printf("%-22s %-16v %-16s\n", "quic (no loss)", cleanQUIC, "-")

	lossyTCP := tcpCase(0)
	lossyQUIC := quicCase(true)
	fmt.Printf("%-22s %-16v %-16v\n", "tcp/h2 (loss on A)", lossyTCP, lossyTCP-cleanTCP)
	fmt.Printf("%-22s %-16v %-16v\n", "quic (loss on A)", lossyQUIC, lossyQUIC-cleanQUIC)

	fmt.Println()
	fmt.Println("the TCP byte stream stalls object B behind A's retransmission;")
	fmt.Println("QUIC's independent streams confine the damage to object A.")
}

// tcpCase interleaves the two objects over one TCP connection, dropping
// the data packet at byte offset dropSeq (−1 = no loss). Returns when
// the whole byte stream (and so object B) is delivered.
func tcpCase(dropSeq int64) time.Duration {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	fwd := &netsim.Link{Sim: &sim, Rate: rate, Delay: oneWay}
	rev := &netsim.Link{Sim: &sim, Delay: oneWay}
	if dropSeq >= 0 {
		dropped := false
		fwd.DropFn = func(p netsim.Packet) bool {
			if !dropped && !p.IsAck && p.Len > 0 && p.Seq == dropSeq {
				dropped = true
				return true
			}
			return false
		}
	}
	conn := tcpsim.New(&sim, tcpsim.Config{}, fwd, rev)
	for i := 0; i < objPackets; i++ {
		conn.Write(1500) // object A chunk
		conn.Write(1500) // object B chunk
	}
	var done netsim.Time
	conn.OnAllAcked = func() { done = sim.Now() }
	sim.Run()
	return done
}

// quicCase serves the objects as two QUIC streams, optionally dropping
// stream 1's first packet. Returns when stream 2 is fully delivered.
func quicCase(drop bool) time.Duration {
	var sim netsim.Sim
	sim.MaxSteps = 1 << 22
	data := &netsim.Link{Sim: &sim, Rate: rate, Delay: oneWay}
	acks := &netsim.Link{Sim: &sim, Delay: oneWay}
	if drop {
		dropped := false
		data.DropFn = func(p netsim.Packet) bool {
			if !dropped && p.SackLo == 1 && p.SackHi == 0 {
				dropped = true
				return true
			}
			return false
		}
	}
	c := quicsim.New(&sim, quicsim.Config{}, data, acks)
	var done netsim.Time
	c.OnStreamDeliver = func(stream int, n int64) {
		if stream == 2 && c.Delivered(2) == objPackets*1500 {
			done = sim.Now()
		}
	}
	c.WriteStream(1, objPackets*1500)
	c.WriteStream(2, objPackets*1500)
	sim.Run()
	return done
}
