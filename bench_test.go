// Benchmarks regenerating every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// recomputes its experiment's data and reports the headline values via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// The world-scale figures share one cached dataset (benchStudy), built
// once per process at a scale where per-window aggregations clear the
// paper's 30-sample validity floor.
package repro_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/hdratio"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/study"
	"repro/internal/validate"
	"repro/internal/workload"
	"repro/internal/world"
)

var (
	studyOnce sync.Once
	studyRes  *study.Results
)

// benchStudy builds the shared dataset: 30 groups × 2 days at a session
// density that keeps per-window aggregations statistically valid.
func benchStudy(b *testing.B) *study.Results {
	b.Helper()
	studyOnce.Do(func() {
		studyRes = study.Run(world.Config{
			Seed:                   42,
			Groups:                 30,
			Days:                   2,
			SessionsPerGroupWindow: 100,
		})
	})
	return studyRes
}

// --- Figures 1-3: traffic characterisation -------------------------------

func benchWorkload(b *testing.B, n int) []workload.SessionSpec {
	g := workload.NewGenerator(rng.New(1), workload.Config{})
	specs := make([]workload.SessionSpec, n)
	for i := range specs {
		specs[i] = g.Session()
	}
	return specs
}

func BenchmarkFig1aSessionDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := benchWorkload(b, 20000)
		under1s, under1m, over3m := 0, 0, 0
		for _, s := range specs {
			if s.Duration < time.Second {
				under1s++
			}
			if s.Duration < time.Minute {
				under1m++
			}
			if s.Duration > 3*time.Minute {
				over3m++
			}
		}
		n := float64(len(specs))
		b.ReportMetric(float64(under1s)/n, "frac<1s(paper:.074)")
		b.ReportMetric(float64(under1m)/n, "frac<1min(paper:.33)")
		b.ReportMetric(float64(over3m)/n, "frac>3min(paper:.20)")
	}
}

func BenchmarkFig1bBusyTime(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := res.Overview.BusyFraction["all"]
		b.ReportMetric(all.CDF(0.10), "frac-busy<10%(paper:~.75-.80)")
	}
}

func BenchmarkFig2Bytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := benchWorkload(b, 20000)
		var under10k, over1m int
		var resp, respUnder6k int
		for _, s := range specs {
			tb := s.TotalBytes()
			if tb < 10_000 {
				under10k++
			}
			if tb > 1_000_000 {
				over1m++
			}
			for _, txn := range s.Txns {
				resp++
				if txn.Bytes < 6_000 {
					respUnder6k++
				}
			}
		}
		n := float64(len(specs))
		b.ReportMetric(float64(under10k)/n, "sessions<10KB(paper:.58)")
		b.ReportMetric(float64(over1m)/n, "sessions>1MB(paper:.06)")
		b.ReportMetric(float64(respUnder6k)/float64(resp), "responses<6KB(paper:>.50)")
	}
}

func BenchmarkFig3Transactions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := benchWorkload(b, 20000)
		var under5, big int
		var bigBytes, total int64
		for _, s := range specs {
			if len(s.Txns) < 5 {
				under5++
			}
			tb := s.TotalBytes()
			total += tb
			if len(s.Txns) >= 50 {
				big++
				bigBytes += tb
			}
		}
		b.ReportMetric(float64(under5)/float64(len(specs)), "sessions<5txn(paper:~.80)")
		b.ReportMetric(float64(bigBytes)/float64(total), "bytes-on-50+txn(paper:>.50)")
	}
}

// --- Figure 4 / §3.2: the methodology itself ------------------------------

func BenchmarkFigure4Model(b *testing.B) {
	sess := hdratio.Session{
		MinRTT: 60 * time.Millisecond,
		Transactions: []hdratio.Transaction{
			{Bytes: 2 * 1500, Duration: 60 * time.Millisecond, Wnic: 15000},
			{Bytes: 24 * 1500, Duration: 120 * time.Millisecond, Wnic: 15000},
			{Bytes: 14 * 1500, Duration: 60 * time.Millisecond, Wnic: 30000},
		},
	}
	cfg := hdratio.DefaultConfig()
	b.ReportAllocs()
	var out hdratio.Outcome
	for i := 0; i < b.N; i++ {
		out = hdratio.Evaluate(sess, cfg)
	}
	b.ReportMetric(out.HDratio(), "hdratio(paper:1.0)")
	b.ReportMetric(float64(out.Tested), "tested(paper:2)")
}

// --- §3.2.3 validation -----------------------------------------------------

func BenchmarkValidationSweep(b *testing.B) {
	var s validate.Summary
	for i := 0; i < b.N; i++ {
		results := validate.Sweep(validate.DefaultSweep(), 47)
		s = validate.Summarise(results)
	}
	b.ReportMetric(float64(s.Overestimates), "overestimates(paper:0)")
	b.ReportMetric(s.P99RelError(), "p99-rel-err(paper:.066)")
	b.ReportMetric(float64(s.Testable), "testable-configs")
}

// --- Figure 5 --------------------------------------------------------------

func BenchmarkFig5PopulationShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := world.New(world.Config{Seed: 3, Groups: 1, Days: 1, SessionsPerGroupWindow: 60})
		g := w.Groups[0]
		g.BaseRTT = 20 * time.Millisecond
		var shift world.PopulationShift
		shift.AltRTT = 60 * time.Millisecond
		for h := 0; h < 24; h++ {
			d := h - 12
			if d < 0 {
				d = -d
			}
			shift.AltShareByHour[h] = 0.75 * (1 - float64(d)/12)
		}
		g.PopulationShift = &shift
		store := agg.NewStore()
		w.GenerateGroup(0, func(s sample.Sample) { store.Add(s) })
		series := analysis.RTTSeries(store.Groups()[0])
		lo, hi := 1e9, 0.0
		for _, v := range series {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		b.ReportMetric(hi-lo, "median-swing-ms(paper:~40)")
	}
}

// --- Figures 6-7, §4 --------------------------------------------------------

func BenchmarkFig6aGlobal(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := res.Overview
		b.ReportMetric(o.MinRTT.Quantile(0.5), "minrtt-p50-ms(paper:39)")
		b.ReportMetric(o.MinRTT.Quantile(0.8), "minrtt-p80-ms(paper:78)")
		b.ReportMetric(o.HDPositiveShare(), "hdratio>0(paper:.82)")
		b.ReportMetric(o.HDFullShare(), "hdratio=1(paper:.60)")
	}
}

func BenchmarkFig6bMinRTTPerContinent(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cont, paper := range map[geo.Continent]string{
			geo.Africa: "58", geo.Asia: "51", geo.SouthAmerica: "40",
		} {
			co := res.Overview.PerContinent[cont]
			if co != nil && co.MinRTT.Count() > 0 {
				b.ReportMetric(co.MinRTT.Quantile(0.5), string(cont)+"-p50-ms(paper:"+paper+")")
			}
		}
	}
}

func BenchmarkFig6cHDratioPerContinent(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cont, paper := range map[geo.Continent]string{
			geo.Africa: ".36", geo.Asia: ".24", geo.SouthAmerica: ".27",
		} {
			co := res.Overview.PerContinent[cont]
			if co != nil && co.HDDefined > 0 {
				b.ReportMetric(float64(co.HDZero)/float64(co.HDDefined),
					string(cont)+"-hd0(paper:"+paper+")")
			}
		}
	}
}

func BenchmarkFig7MinRTTvsHDratio(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for bi, bucket := range analysis.RTTBuckets {
			d := res.Overview.HDByRTTBucket[bi]
			if d.Count() > 0 {
				b.ReportMetric(d.Quantile(0.5), "hd-p50-rtt"+bucket.Name)
			}
		}
	}
}

func BenchmarkSimpleApproachAblation(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Session medians saturate at 1.0 when most sessions pass all
		// transactions, so the mean is the discriminating summary here;
		// cmd/edgereport prints both.
		b.ReportMetric(res.Overview.HD.Mean(), "corrected-mean-hd")
		b.ReportMetric(res.Overview.SimpleHD.Mean(), "naive-mean-hd(paper-median:.69)")
	}
}

// --- Figure 8 / Table 1, §5 --------------------------------------------------

func BenchmarkFig8Degradation(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	var dr analysis.DegradationResult
	for i := 0; i < b.N; i++ {
		dr = analysis.Degradation(res.Store, analysis.MetricMinRTT)
	}
	cdf, _, _ := dr.CDF()
	b.ReportMetric(cdf.FractionAbove(4), "traffic-deg>=4ms(paper:.10)")
	b.ReportMetric(cdf.FractionAbove(20), "traffic-deg>=20ms(paper:.011)")
	b.ReportMetric(float64(dr.CoveredBytes)/float64(dr.TotalBytes), "coverage(paper:.948)")
}

func BenchmarkTable1Classes(b *testing.B) {
	res := benchStudy(b)
	params := analysis.DefaultClassifyParams(res.Cfg.Days)
	b.ResetTimer()
	var tbl analysis.ClassTable
	for i := 0; i < b.N; i++ {
		dr := analysis.Degradation(res.Store, analysis.MetricMinRTT)
		tbl = dr.Classify(res.Cfg.Windows(), params, study.Table1DegMinRTTMs)
	}
	b.ReportMetric(tbl.Overall[analysis.Uneventful][0].GroupTrafficShare, "uneventful@5ms(paper:.575)")
	b.ReportMetric(tbl.Overall[analysis.Diurnal][0].GroupTrafficShare, "diurnal@5ms(paper:.175)")
	b.ReportMetric(tbl.Overall[analysis.Episodic][0].GroupTrafficShare, "episodic@5ms(paper:.242)")
}

// --- Figure 9 / Tables 1-2, §6 -----------------------------------------------

func BenchmarkFig9Opportunity(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	var opp analysis.OpportunityResult
	for i := 0; i < b.N; i++ {
		opp = analysis.Opportunity(res.Store, analysis.MetricMinRTT)
	}
	b.ReportMetric(opp.FractionWithinOfOptimal(3), "within-3ms-of-optimal(paper:.839)")
	b.ReportMetric(opp.FractionImprovableAtLeast(5), "improvable>=5ms(paper:.020)")
}

func BenchmarkFig10RelationshipDiff(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := analysis.CompareRelationships(res.Store, analysis.MetricMinRTT)
		if pvt := out[analysis.PeeringVsTransit]; pvt != nil && pvt.Total() > 0 {
			b.ReportMetric(pvt.Quantile(0.5), "peer-vs-transit-p50-diff-ms(paper:<0)")
			b.ReportMetric(pvt.FractionAtOrBelow(0), "peer-better-frac(paper:>.5)")
		}
	}
}

func BenchmarkTable2RelationshipOpportunity(b *testing.B) {
	res := benchStudy(b)
	b.ResetTimer()
	var tbl analysis.RelationshipTable
	for i := 0; i < b.N; i++ {
		opp := analysis.Opportunity(res.Store, analysis.MetricMinRTT)
		tbl = opp.Relationships(5)
	}
	if tbl.TotalBytes > 0 {
		b.ReportMetric(float64(tbl.TotalEventBytes)/float64(tbl.TotalBytes), "opportunity-traffic-frac")
		b.ReportMetric(float64(len(tbl.Pairs)), "relationship-pairs")
	}
}

// --- End-to-end throughput ----------------------------------------------------

// BenchmarkDatasetGeneration measures the world generator itself —
// sessions per second through workload + flowsim + methodology.
func BenchmarkDatasetGeneration(b *testing.B) {
	w := world.New(world.Config{Seed: 9, Groups: 4, Days: 1, SessionsPerGroupWindow: 10})
	b.ResetTimer()
	sessions := 0
	for i := 0; i < b.N; i++ {
		w.GenerateGroup(i%len(w.Groups), func(s sample.Sample) { sessions++ })
	}
	b.ReportMetric(float64(sessions)/b.Elapsed().Seconds(), "sessions/s")
}
